"""The continuous-gossip service (the paper's black box, Section 4.2).

CONGOS consumes a *Continuous Gossip* service [13] purely through its
interface:

* ``inject(payload, deadline, dest)`` — any process, any round;
* every *admissible* item (origin alive throughout, recipient alive
  throughout) is delivered to its destinations by the deadline;
* per-round message complexity is bounded.

This implementation uses randomized epidemic push (or a deterministic
expander schedule) with per-target batching of all active items.  Delivery
is w.h.p. by default; with ``reliable=True`` the origin additionally
flushes the item directly to its destination scope in the expiry round,
upgrading admissible delivery to probability 1 — at the cost of a message
burst, which is why CONGOS instead relies on its own top-level fallback for
the probability-1 guarantee (see DESIGN.md Section 2).

Every send passes through a :class:`~repro.gossip.filter.GroupFilter`:
a filtered instance (GroupGossip[l]) physically cannot address a process
outside its group.
"""

from __future__ import annotations

import math
import random
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.gossip.epidemic import default_fanout
from repro.gossip.expander import ShiftExpander
from repro.gossip.filter import GroupFilter
from repro.gossip.rumor import GossipItem
from repro.gossip.service import SubService
from repro.obs.instrument import NULL_TELEMETRY
from repro.sim.messages import Message, ServiceTags

__all__ = ["ContinuousGossip"]

DeliverCallback = Callable[[int, GossipItem], None]


# Sentinel "no active item" expiry: larger than any real round number.
_NO_EXPIRY = 2 ** 63


def _backoff_due(age: int, horizon: int) -> bool:
    """True at exponentially spaced ages past the resend horizon."""
    offset = age - horizon
    return offset >= 1 and (offset & (offset - 1)) == 0


class ContinuousGossip(SubService):
    """One continuous-gossip instance at one process.

    Parameters
    ----------
    scope:
        The set of pids this instance may talk to (its group); enforced by
        an internal :class:`GroupFilter`.
    deliver:
        Callback ``(round_no, item)`` fired once per item delivered to this
        process (i.e. this pid is in the item's destination set).
    fanout_scale:
        Multiplier on ``log2(|scope|)`` for the per-round push fanout.
    schedule:
        ``"random"`` (epidemic push) or ``"expander"`` (deterministic
        circulant schedule, the derandomized option in the spirit of [13]).
    reliable:
        If True, the origin direct-sends each of its items to the item's
        in-scope destinations in the expiry round (probability-1 delivery
        for admissible items).
    """

    def __init__(
        self,
        pid: int,
        n: int,
        channel: str,
        scope: Iterable[int],
        rng: random.Random,
        deliver: Optional[DeliverCallback] = None,
        service: str = ServiceTags.GROUP_GOSSIP,
        fanout_scale: float = 2.0,
        schedule: str = "random",
        reliable: bool = False,
        resend_horizon: Optional[int] = None,
        resend_backoff: bool = False,
        telemetry=None,
    ):
        super().__init__(pid, n, service, channel)
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.filter = GroupFilter(scope)
        if pid not in self.filter.scope:
            raise ValueError(
                "process {} is not in the scope of channel {!r}".format(pid, channel)
            )
        self.rng = rng
        self.deliver = deliver
        self.fanout_scale = fanout_scale
        self.reliable = reliable
        if schedule not in ("random", "expander"):
            raise ValueError("unknown schedule {!r}".format(schedule))
        self.schedule = schedule
        self._expander: Optional[ShiftExpander] = None
        if schedule == "expander":
            degree = default_fanout(len(self.filter.scope), fanout_scale)
            self._expander = ShiftExpander(self.filter.scope, degree)

        self._active: Dict[Tuple, GossipItem] = {}
        # The subset of _active still within the resend horizon, in the
        # same insertion order.  Items leave exactly once (on aging out or
        # expiry), so the per-round send scan touches only items actually
        # being re-broadcast instead of every silent-but-unexpired item.
        # With resend_backoff the silent tail wakes up again, so that path
        # filters _active directly.
        self._broadcast: Dict[Tuple, GossipItem] = {}
        self._seen: set = set()
        self._pending_delivery: List[GossipItem] = []
        self._inject_seq = 0
        # Earliest expiry among active items; lets _expire() skip the sweep
        # in rounds where nothing can have expired (the common case).
        self._min_expiry: int = _NO_EXPIRY
        # Target-selection caches (the scope is immutable).
        self._peers: List[int] = sorted(self.filter.scope - {pid})
        self._fanout: int = default_fanout(len(self.filter.scope), fanout_scale)
        # How long an item keeps being re-broadcast.  Epidemic push
        # saturates the scope in O(log |scope|) rounds w.h.p.; re-sending
        # beyond ~2x that only inflates message sizes.  None = auto.
        if resend_horizon is None:
            resend_horizon = max(
                8, 2 * math.ceil(math.log2(max(2, len(self.filter.scope)))) + 4
            )
        self.resend_horizon = resend_horizon
        # Degradation knob: items past the horizon are normally silent;
        # with backoff they are rebroadcast at exponentially spaced ages
        # (horizon+1, +2, +4, ...) until expiry, so a lossy network gets
        # bounded extra chances instead of none.
        self.resend_backoff = resend_backoff

    # ------------------------------------------------------------------
    # Injection
    # ------------------------------------------------------------------

    def inject(
        self,
        round_no: int,
        payload: object,
        deadline: int,
        dest: Iterable[int],
        uid: Optional[Tuple] = None,
    ) -> GossipItem:
        """Start gossiping ``payload`` to ``dest`` with the given deadline.

        The destination set is intersected with the scope (processes the
        filter would block are "effectively failed" for this instance).
        The injecting process, if in the destination set, is delivered the
        payload immediately.
        """
        if deadline < 1:
            raise ValueError("gossip deadline must be >= 1 round")
        if uid is None:
            uid = (self.channel, self.pid, round_no, self._inject_seq)
            self._inject_seq += 1
        if uid in self._seen:
            raise ValueError("duplicate gossip uid {!r}".format(uid))
        item = GossipItem(
            uid=uid,
            origin=self.pid,
            payload=payload,
            expiry=round_no + deadline,
            dest=self.filter.restrict(dest),
            born=round_no,
        )
        self._seen.add(uid)
        self._active[uid] = item
        self._broadcast[uid] = item
        if item.expiry < self._min_expiry:
            self._min_expiry = item.expiry
        if self.telemetry.enabled:
            self.telemetry.metrics.counter(
                "gossip.injected", service=self.service
            ).inc()
            rid = getattr(payload, "rid", None)
            if rid is not None:
                # Only Fragments carry a rid; share payloads are counted
                # above but not traced (they dominate event volume).
                self.telemetry.emit(
                    "gossip_inject",
                    round_no,
                    pid=self.pid,
                    channel=self.channel,
                    service=self.service,
                    rid=rid,
                    expiry=item.expiry,
                )
        if self.pid in item.dest and self.deliver is not None:
            self.deliver(round_no, item)
        return item

    # ------------------------------------------------------------------
    # Engine phases
    # ------------------------------------------------------------------

    def send_phase(self, round_no: int) -> List[Message]:
        self._expire(round_no)
        if not self._active:
            return []
        horizon = self.resend_horizon
        if self.resend_backoff:
            items = tuple(
                item
                for item in self._active.values()
                if round_no - item.born <= horizon
                or _backoff_due(round_no - item.born, horizon)
            )
        else:
            broadcast = self._broadcast
            cutoff = round_no - horizon
            stale = [
                uid for uid, item in broadcast.items() if item.born < cutoff
            ]
            for uid in stale:
                del broadcast[uid]
            items = tuple(broadcast.values())
        messages: List[Message] = []
        targets: List[int] = []
        if items:
            targets = self._choose_targets(round_no)
            for target in targets:
                messages.append(self.make_message(target, items, size=len(items)))
        if self.reliable:
            messages.extend(self._flush_expiring(round_no, set(targets)))
        return self.filter.apply(messages)

    def on_message(self, round_no: int, message: Message) -> None:
        payload = message.payload
        if not isinstance(payload, tuple):
            raise TypeError(
                "gossip channel {!r} received non-batch payload".format(self.channel)
            )
        # Inlined seen-check: batches are dominated by already-seen items
        # once the epidemic saturates, so skip the _absorb call for them.
        seen = self._seen
        absorb = self._absorb
        for item in payload:
            if item.uid not in seen:
                absorb(round_no, item)

    def end_round(self, round_no: int) -> None:
        pending, self._pending_delivery = self._pending_delivery, []
        if self.deliver is None:
            return
        for item in pending:
            self.deliver(round_no, item)

    # ------------------------------------------------------------------
    # Queries (tests, audits)
    # ------------------------------------------------------------------

    def active_items(self) -> List[GossipItem]:
        return list(self._active.values())

    def has_active(self) -> bool:
        return bool(self._active)

    def knows(self, uid: Tuple) -> bool:
        return uid in self._seen

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _choose_targets(self, round_no: int) -> List[int]:
        if not self._peers or self._fanout <= 0:
            return []
        if self._expander is not None:
            return self._expander.targets(self.pid, round_no)[: self._fanout]
        if len(self._peers) <= self._fanout:
            return self._peers
        return self.rng.sample(self._peers, self._fanout)

    def _flush_expiring(self, round_no: int, already: set) -> List[Message]:
        flushes: List[Message] = []
        for item in self._active.values():
            if item.origin != self.pid or item.expiry != round_no:
                continue
            batch = (item,)
            for dst in sorted(item.dest):
                if dst == self.pid or dst in already:
                    continue
                flushes.append(self.make_message(dst, batch, size=1))
        return flushes

    def _absorb(self, round_no: int, item: GossipItem) -> None:
        if item.uid in self._seen:
            return
        self._seen.add(item.uid)
        expiry = item.expiry
        if round_no > expiry:
            return
        self._active[item.uid] = item
        self._broadcast[item.uid] = item
        if expiry < self._min_expiry:
            self._min_expiry = expiry
        if self.pid in item.dest:
            self._pending_delivery.append(item)

    def _expire(self, round_no: int) -> None:
        if round_no <= self._min_expiry:
            return  # nothing can have expired yet
        active = self._active
        broadcast = self._broadcast
        dead = [uid for uid, item in active.items() if item.expiry < round_no]
        for uid in dead:
            del active[uid]
            broadcast.pop(uid, None)
        self._min_expiry = (
            min(item.expiry for item in active.values()) if active else _NO_EXPIRY
        )
