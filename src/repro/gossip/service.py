"""Sub-service plumbing inside a node.

A protocol node (e.g. :class:`repro.core.congos.CongosNode`) is a stack of
cooperating *sub-services* — exactly the architecture of the paper's
Figure 1: ConfidentialGossip, Proxy[l], GroupDistribution[l], GroupGossip[l]
(behind a Filter) and AllGossip, all sharing one Network.

Each sub-service owns a ``channel`` (unique routing key) and a coarse
``service`` tag (for metrics).  The :class:`ServiceHost` mixin collects the
sub-services of a node, fans the inbox out by channel, and runs the phases
in a fixed, deterministic order.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.sim.messages import Message

__all__ = ["SubService", "ServiceHost"]


class SubService:
    """One service instance at one process."""

    def __init__(self, pid: int, n: int, service: str, channel: str):
        self.pid = pid
        self.n = n
        self.service = service
        self.channel = channel

    # -- engine-driven phases ------------------------------------------

    def send_phase(self, round_no: int) -> List[Message]:
        """Messages this service sends this round."""
        return []

    def on_message(self, round_no: int, message: Message) -> None:
        """One delivered message addressed to this service's channel."""

    def end_round(self, round_no: int) -> None:
        """Called after all of this round's messages were dispatched."""

    # -- helpers --------------------------------------------------------

    def make_message(
        self, dst: int, payload: object, size: int = 1
    ) -> Message:
        return Message(
            src=self.pid,
            dst=dst,
            service=self.service,
            payload=payload,
            size=size,
            channel=self.channel,
        )


class ServiceHost:
    """Orders sub-services and routes messages between them.

    Phase order is the registration order for sends, and likewise for
    ``end_round`` — register upstream services (gossip substrates) before
    the services consuming their deliveries so that, within a round,
    information flows in the paper's direction (network -> gossip ->
    proxy/GD -> coordinator).
    """

    def __init__(self) -> None:
        self._services: List[SubService] = []
        self._by_channel: Dict[str, SubService] = {}

    def register(self, service: SubService) -> SubService:
        if service.channel in self._by_channel:
            raise ValueError("duplicate channel {!r}".format(service.channel))
        self._services.append(service)
        self._by_channel[service.channel] = service
        return service

    @property
    def services(self) -> List[SubService]:
        return list(self._services)

    def service_for(self, channel: str) -> Optional[SubService]:
        return self._by_channel.get(channel)

    def collect_sends(self, round_no: int) -> List[Message]:
        outgoing: List[Message] = []
        for service in self._services:
            outgoing.extend(service.send_phase(round_no))
        return outgoing

    def dispatch(self, round_no: int, inbox: List[Message]) -> List[Message]:
        """Route messages to their channels; return unroutable messages."""
        unrouted: List[Message] = []
        for message in inbox:
            service = self._by_channel.get(message.channel)
            if service is None:
                unrouted.append(message)
            else:
                service.on_message(round_no, message)
        return unrouted

    def finish_round(self, round_no: int) -> None:
        for service in self._services:
            service.end_round(round_no)
