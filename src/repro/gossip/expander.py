"""Deterministic expander-like communication schedules.

The continuous-gossip algorithm of [13] (Georgiou, Gilbert, Kowalski,
"Meeting the Deadline", PODC 2010) derandomizes epidemic gossip by replacing
random target choices with carefully chosen expander graphs.  We provide a
lightweight deterministic analogue: a circulant "shift" graph whose offsets
are geometrically spread, which mixes fast in practice, plus a per-round
rotation so that over ``k`` rounds each process contacts ``k * degree``
distinct peers.

This is *not* a certified Ramanujan expander — constructing those is out of
scope (DESIGN.md Section 6) — but it provides the property CONGOS needs
from [13]'s schedules at simulation scale: deterministic, history-free
(restart-safe, since the schedule depends only on the pid, the round and
the group), and rapidly mixing.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

__all__ = ["ShiftExpander", "circulant_offsets"]


def circulant_offsets(size: int, degree: int) -> Tuple[int, ...]:
    """Geometrically spread circulant offsets ``{1, 2, 4, ...}`` mod size.

    Doubling offsets give the hypercube-like dimension hops that make the
    graph's diameter logarithmic; extra offsets (when ``degree`` exceeds
    ``log2(size)``) are filled with odd strides for additional mixing.
    """
    if size <= 1:
        return ()
    offsets: List[int] = []
    step = 1
    while len(offsets) < degree and step < size:
        offsets.append(step)
        step *= 2
    stride = 3
    while len(offsets) < degree:
        candidate = stride % size
        if candidate not in offsets and candidate != 0:
            offsets.append(candidate)
        stride += 2
        if stride > 2 * size:  # degenerate tiny groups
            break
    return tuple(offsets)


class ShiftExpander:
    """A deterministic rotating schedule over an ordered group of pids.

    The group is given as a sorted sequence; each member contacts, in round
    ``r``, the members at circulant offsets rotated by ``r``.  Restarted
    processes recompute the same schedule from the global clock alone.
    """

    def __init__(self, members: Sequence[int], degree: int):
        self.members: Tuple[int, ...] = tuple(sorted(set(members)))
        if not self.members:
            raise ValueError("expander group must be non-empty")
        self.size = len(self.members)
        self.degree = max(0, min(degree, self.size - 1))
        self.offsets = circulant_offsets(self.size, self.degree)
        self._index = {pid: i for i, pid in enumerate(self.members)}

    def contains(self, pid: int) -> bool:
        return pid in self._index

    def neighbors(self, pid: int) -> List[int]:
        """The static (round-0) neighborhood of ``pid``."""
        return self.targets(pid, 0)

    def targets(self, pid: int, round_no: int) -> List[int]:
        """Deterministic contact targets of ``pid`` in ``round_no``."""
        if self.size <= 1:
            return []
        position = self._index.get(pid)
        if position is None:
            raise KeyError("pid {} not in expander group".format(pid))
        rotation = round_no % self.size
        out: List[int] = []
        for offset in self.offsets:
            target = self.members[(position + offset + rotation) % self.size]
            if target != pid and target not in out:
                out.append(target)
        return out

    def diameter_bound(self) -> int:
        """A crude upper bound on the graph diameter (for tests)."""
        if self.size <= 1:
            return 0
        hops = 0
        reach = 1
        while reach < self.size:
            reach += reach * max(1, len(self.offsets))
            hops += 1
        return hops
