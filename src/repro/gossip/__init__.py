"""Continuous-gossip substrate: rumors, epidemic/expander spreading, filters."""

from repro.gossip.continuous import ContinuousGossip
from repro.gossip.epidemic import (
    choose_push_targets,
    default_fanout,
    rounds_to_saturate,
)
from repro.gossip.expander import ShiftExpander, circulant_offsets
from repro.gossip.filter import GroupFilter, PassFilter
from repro.gossip.rumor import GossipItem, Rumor, RumorId, make_rumor
from repro.gossip.service import ServiceHost, SubService

__all__ = [
    "ContinuousGossip",
    "GossipItem",
    "GroupFilter",
    "PassFilter",
    "Rumor",
    "RumorId",
    "ServiceHost",
    "ShiftExpander",
    "SubService",
    "choose_push_targets",
    "circulant_offsets",
    "default_fanout",
    "make_rumor",
    "rounds_to_saturate",
]
