"""The group Filter (Figure 11).

Every message a GroupGossip[l] instance sends is filtered before reaching
the network: if the sender belongs to group ``P`` of partition ``l``, any
message addressed outside ``P`` is silently dropped.  "From the perspective
of GroupGossip[l], the processes that cannot be reached due to the filter
are effectively failed."

Our :class:`ContinuousGossip` chooses targets inside its scope to begin
with, so in a correct build the filter never fires — it is the *enforcement
boundary* that turns a target-selection bug into a counted drop instead of
a confidentiality violation, and the audit asserts ``dropped == 0``.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List

from repro.sim.messages import Message

__all__ = ["GroupFilter", "PassFilter"]


class GroupFilter:
    """Drops messages whose destination lies outside ``scope``."""

    def __init__(self, scope: Iterable[int]):
        self.scope: FrozenSet[int] = frozenset(scope)
        if not self.scope:
            raise ValueError("filter scope must be non-empty")
        self.dropped = 0

    def allows(self, pid: int) -> bool:
        return pid in self.scope

    def apply(self, messages: List[Message]) -> List[Message]:
        """Return only the messages whose destination is in scope."""
        allowed: List[Message] = []
        for message in messages:
            if message.dst in self.scope:
                allowed.append(message)
            else:
                self.dropped += 1
        return allowed

    def restrict(self, pids: Iterable[int]) -> FrozenSet[int]:
        """Intersect a destination set with the scope."""
        return frozenset(pids) & self.scope

    def __repr__(self) -> str:
        return "GroupFilter(|scope|={}, dropped={})".format(
            len(self.scope), self.dropped
        )


class PassFilter(GroupFilter):
    """The identity filter used by AllGossip (scope = all of [n])."""

    def __init__(self, n: int):
        super().__init__(range(n))
