"""Epidemic (rumor-spreading) primitives.

The continuous-gossip substrate and the plain-gossip baseline both build on
classic randomized push: each informed process forwards to a few targets
chosen uniformly at random each round, which informs an n-process group in
``O(log n)`` rounds w.h.p. (Karp et al., FOCS 2000 — reference [19] of the
paper).  This module centralises target selection and fanout policy.
"""

from __future__ import annotations

import math
import random
from typing import FrozenSet, List, Sequence

__all__ = ["default_fanout", "choose_push_targets", "rounds_to_saturate"]


def default_fanout(scope_size: int, scale: float = 2.0, minimum: int = 1) -> int:
    """Push fanout for a group of ``scope_size`` processes.

    ``ceil(scale * log2(scope_size))`` targets per round informs the group
    within ``O(log n)`` rounds with failure probability polynomially small
    in the group size; ``scale`` trades messages for speed.
    """
    if scope_size <= 1:
        return 0
    fanout = math.ceil(scale * math.log2(scope_size))
    return max(minimum, min(fanout, scope_size - 1))


# Candidate pools keyed by (scope, self_pid, exclude).  Scopes are small in
# number (groups are fixed per run) but queried every round by every member,
# so the filtered pool is rebuilt millions of times with identical inputs.
# The cached pool preserves the original scope order exactly, so the
# ``rng.sample`` call sequence — and hence every default run — is unchanged.
# Bounded: cleared wholesale if an adversarial workload floods it with
# distinct keys (each entry is O(|scope|), so the cap keeps memory trivial).
_POOL_CACHE: dict = {}
_POOL_CACHE_MAX = 4096


def choose_push_targets(
    rng: random.Random,
    scope: Sequence[int],
    self_pid: int,
    fanout: int,
    exclude: FrozenSet[int] = frozenset(),
) -> List[int]:
    """Choose up to ``fanout`` distinct targets from ``scope``.

    Never selects ``self_pid`` or anything in ``exclude``.  When the
    candidate pool is smaller than ``fanout`` the whole pool is returned
    (deterministically ordered), since sampling more is impossible.
    """
    if fanout <= 0:
        return []
    key = (tuple(scope), self_pid, exclude)
    pool = _POOL_CACHE.get(key)
    if pool is None:
        if len(_POOL_CACHE) >= _POOL_CACHE_MAX:
            _POOL_CACHE.clear()
        pool = [p for p in key[0] if p != self_pid and p not in exclude]
        _POOL_CACHE[key] = pool
    if not pool:
        return []
    if len(pool) <= fanout:
        return sorted(pool)
    return rng.sample(pool, fanout)


def rounds_to_saturate(scope_size: int, fanout: int) -> int:
    """A safe upper estimate of rounds for push to inform the whole group.

    Push roughly multiplies the informed set by ``1 + fanout`` per round
    until half the group is informed, then halves the uninformed set each
    round; ``2 * ceil(log(scope_size))`` rounds is a comfortable bound used
    to size gossip deadlines in examples and tests.
    """
    if scope_size <= 1:
        return 0
    if fanout <= 0:
        raise ValueError("fanout must be positive for saturation")
    growth = 1 + fanout
    to_half = math.ceil(math.log(scope_size, growth)) if scope_size > 1 else 0
    drain = math.ceil(math.log2(scope_size))
    return max(1, to_half + drain)
