"""Rumors and gossip items.

A :class:`Rumor` is the application-level object of the paper (Section 2):
a triple ``<z, d, D>`` of data, deadline duration and destination set, plus
an identifier and provenance.  A :class:`GossipItem` is the lower-level unit
circulated by a continuous-gossip service instance (a rumor fragment, a
hitSet share, a confirmation record, ...), with its own absolute expiry
round and destination scope.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterator, Optional, Tuple

from repro.sim.messages import KnowledgeAtom, plaintext_atom, reveals_of

__all__ = ["RumorId", "Rumor", "GossipItem", "make_rumor"]


@dataclass(frozen=True, order=True)
class RumorId:
    """Globally unique rumor identifier: (source pid, per-source counter).

    Section 7 notes the counter could be replaced by a pseudorandom
    identifier to leak less metadata; :mod:`repro.core.extensions` does so.
    """

    src: int
    seq: int

    def __str__(self) -> str:
        return "r{}:{}".format(self.src, self.seq)


@dataclass(frozen=True)
class Rumor:
    """The paper's rumor triple ``<z, d, D>`` with provenance.

    Attributes
    ----------
    rid:
        Unique identifier (source pid + per-source sequence number).
    data:
        The confidential payload ``z`` as bytes.
    deadline:
        Deadline *duration* ``d`` in rounds: the rumor must reach every
        admissible destination by round ``injected_at + deadline``.
    dest:
        The destination set ``D`` (pids allowed to learn ``data``).
    injected_at:
        The round the rumor entered the system (set by the workload).
    """

    rid: RumorId
    data: bytes
    deadline: int
    dest: FrozenSet[int]
    injected_at: int = 0

    def __post_init__(self) -> None:
        if self.deadline < 1:
            raise ValueError("deadline must be at least one round")
        if not isinstance(self.data, bytes):
            raise TypeError("rumor data must be bytes")

    @property
    def expiry(self) -> int:
        """Last round by which the rumor must be delivered."""
        return self.injected_at + self.deadline

    def is_active(self, round_no: int) -> bool:
        """Active = injected no later than ``round_no``, deadline not past."""
        return self.injected_at <= round_no <= self.expiry

    def reveals(self) -> Iterator[KnowledgeAtom]:
        """Carrying a full rumor reveals its plaintext."""
        yield plaintext_atom(self.rid)

    def __str__(self) -> str:
        return "Rumor({}, d={}, |D|={})".format(self.rid, self.deadline, len(self.dest))


_SEQUENCES = {}


def make_rumor(
    src: int,
    data: bytes,
    deadline: int,
    dest,
    injected_at: int = 0,
    seq: Optional[int] = None,
) -> Rumor:
    """Convenience constructor assigning per-source sequence numbers.

    Explicit ``seq`` overrides the automatic counter (workload generators
    manage their own counters to stay deterministic and thread-free; the
    module-level counter exists for interactive/example use).
    """
    if seq is None:
        seq = _SEQUENCES.get(src, 0)
        _SEQUENCES[src] = seq + 1
    return Rumor(
        rid=RumorId(src, seq),
        data=data,
        deadline=deadline,
        dest=frozenset(dest),
        injected_at=injected_at,
    )


@dataclass(frozen=True)
class GossipItem:
    """One unit circulated by a continuous-gossip service.

    ``uid`` must be unique within the service instance (channel).  The
    service promises to hand ``payload`` to every process in ``dest`` (that
    is inside the service's scope and alive long enough) by round
    ``expiry``; what the payload *is* — a fragment, a hitSet, a collaborator
    heartbeat — is opaque to the service.
    """

    uid: Tuple
    origin: int
    payload: object
    expiry: int
    dest: FrozenSet[int]
    born: int = 0

    def reveals(self) -> Iterator[KnowledgeAtom]:
        """A gossip item reveals whatever its payload reveals."""
        return reveals_of(self.payload)

    def expired(self, round_no: int) -> bool:
        return round_no > self.expiry
