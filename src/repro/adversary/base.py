"""Adversary interface and composition.

A CRRI adversary (Section 2) controls crashes, restarts and rumor
injections, adaptively: it observes the whole system state at the start of
each round, and this round's outgoing messages mid-round.  Workload
generators (:mod:`repro.adversary.injection`) are injection-only
adversaries; fault models and adaptive attackers are crash/restart-only;
:class:`ComposedAdversary` merges any number of them into the single
adversary object the engine expects.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.sim.engine import AdversaryView
from repro.sim.events import MidRoundDecision, RoundDecision
from repro.sim.messages import Message

__all__ = ["Adversary", "NullAdversary", "ComposedAdversary"]


class Adversary:
    """Base adversary: does nothing.  Subclass and override the hooks."""

    def round_start(self, view: AdversaryView) -> RoundDecision:
        return RoundDecision()

    def mid_round(
        self, view: AdversaryView, outgoing: List[Message]
    ) -> MidRoundDecision:
        return MidRoundDecision()


class NullAdversary(Adversary):
    """Explicitly fault-free and injection-free."""


class ComposedAdversary(Adversary):
    """Merges the decisions of several adversaries, in order.

    Later adversaries see the view *before* earlier decisions are applied
    (the engine applies the merged decision at once), so compose carefully:
    a crash chosen by one part and a restart chosen by another for the same
    pid in the same round is a conflict and raises, mirroring the model's
    "each process can only crash or restart once per round".
    """

    def __init__(self, parts: Iterable[Adversary]):
        self.parts: List[Adversary] = list(parts)

    def round_start(self, view: AdversaryView) -> RoundDecision:
        merged = RoundDecision()
        injected_pids = set()
        for part in self.parts:
            decision = part.round_start(view)
            conflict = (merged.crashes | merged.restarts) & (
                decision.crashes | decision.restarts
            )
            if conflict:
                raise ValueError(
                    "composed adversaries both touched pids {}".format(sorted(conflict))
                )
            merged.crashes |= decision.crashes
            merged.restarts |= decision.restarts
            for pid, rumor in decision.injections:
                if pid in injected_pids:
                    raise ValueError(
                        "composed adversaries both injected at pid {}".format(pid)
                    )
                injected_pids.add(pid)
                merged.injections.append((pid, rumor))
        if merged.crashes:
            # A workload cannot see a sibling fault model's same-round
            # crashes; injections at freshly crashed pids are silently
            # dropped (the model forbids injecting at crashed processes).
            merged.injections = [
                (pid, rumor)
                for pid, rumor in merged.injections
                if pid not in merged.crashes
            ]
        return merged

    def mid_round(
        self, view: AdversaryView, outgoing: List[Message]
    ) -> MidRoundDecision:
        merged = MidRoundDecision()
        for part in self.parts:
            decision = part.mid_round(view, outgoing)
            overlap = merged.crashes & decision.crashes
            if overlap:
                raise ValueError(
                    "composed adversaries both mid-round crashed {}".format(
                        sorted(overlap)
                    )
                )
            merged.crashes |= decision.crashes
            merged.dropped_messages |= decision.dropped_messages
        return merged
