"""Randomized churn: i.i.d. and bursty crash/restart fault models.

These exercise the paper's robustness claim that "processes may crash and
restart at any time; there is no bound on the number of crashed processes
at any given time".  ``immune`` pids are never crashed — benches use it to
keep a (source, destination) pair continuously alive so that some rumors
stay admissible under arbitrarily heavy churn.
"""

from __future__ import annotations

import random
from typing import Iterable, Optional, Sequence, Set

from repro.adversary.base import Adversary
from repro.sim.engine import AdversaryView
from repro.sim.events import RoundDecision

__all__ = ["ChurnAdversary", "BurstCrashAdversary", "CrashOnceAdversary"]


class ChurnAdversary(Adversary):
    """Every round: alive processes crash w.p. ``p_crash``, crashed ones
    restart w.p. ``p_restart``."""

    def __init__(
        self,
        rng: random.Random,
        p_crash: float,
        p_restart: float,
        immune: Iterable[int] = (),
        start_round: int = 0,
        stop_round: Optional[int] = None,
        min_alive: int = 1,
    ):
        if not 0 <= p_crash <= 1 or not 0 <= p_restart <= 1:
            raise ValueError("probabilities must be in [0, 1]")
        self.rng = rng
        self.p_crash = p_crash
        self.p_restart = p_restart
        self.immune: Set[int] = set(immune)
        self.start_round = start_round
        self.stop_round = stop_round
        self.min_alive = min_alive

    def round_start(self, view: AdversaryView) -> RoundDecision:
        decision = RoundDecision()
        round_no = view.round
        if round_no < self.start_round:
            return decision
        if self.stop_round is not None and round_no >= self.stop_round:
            return decision
        alive = view.alive_pids()
        crashed = view.crashed_pids()
        alive_count = len(alive)
        for pid in sorted(alive):
            if pid in self.immune:
                continue
            if alive_count - len(decision.crashes) <= self.min_alive:
                break
            if self.rng.random() < self.p_crash:
                decision.crashes.add(pid)
        for pid in sorted(crashed):
            if self.rng.random() < self.p_restart:
                decision.restarts.add(pid)
        return decision


class BurstCrashAdversary(Adversary):
    """Crash a fraction of the alive set at given rounds; restart later.

    ``bursts`` maps round -> fraction of the (non-immune) alive set to
    crash.  ``restart_after`` rounds later, all crashed processes restart.
    """

    def __init__(
        self,
        rng: random.Random,
        bursts: dict,
        restart_after: Optional[int] = None,
        immune: Iterable[int] = (),
    ):
        self.rng = rng
        self.bursts = dict(bursts)
        self.restart_after = restart_after
        self.immune: Set[int] = set(immune)
        self._restart_rounds: dict = {}

    def round_start(self, view: AdversaryView) -> RoundDecision:
        decision = RoundDecision()
        round_no = view.round
        due = self._restart_rounds.pop(round_no, None)
        if due:
            decision.restarts |= {pid for pid in due if not view.is_alive(pid)}
        fraction = self.bursts.get(round_no)
        if fraction:
            candidates = sorted(
                pid
                for pid in view.alive_pids()
                if pid not in self.immune and pid not in decision.restarts
            )
            count = int(len(candidates) * fraction)
            victims = set(self.rng.sample(candidates, min(count, len(candidates))))
            decision.crashes |= victims
            if self.restart_after is not None and victims:
                key = round_no + self.restart_after
                self._restart_rounds.setdefault(key, set()).update(victims)
        return decision


class CrashOnceAdversary(Adversary):
    """Crash specific pids at a specific round (optionally restart later)."""

    def __init__(
        self,
        victims: Sequence[int],
        crash_round: int,
        restart_round: Optional[int] = None,
    ):
        self.victims = list(victims)
        self.crash_round = crash_round
        self.restart_round = restart_round
        if restart_round is not None and restart_round <= crash_round:
            raise ValueError("restart must come after the crash")

    def round_start(self, view: AdversaryView) -> RoundDecision:
        decision = RoundDecision()
        if view.round == self.crash_round:
            decision.crashes |= {p for p in self.victims if view.is_alive(p)}
        elif self.restart_round is not None and view.round == self.restart_round:
            decision.restarts |= {p for p in self.victims if not view.is_alive(p)}
        return decision
