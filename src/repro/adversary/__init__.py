"""CRRI adversaries: workloads, fault models, adaptive attackers, coalitions."""

from repro.adversary.adaptive import (
    GroupKillerAdversary,
    IsolatorAdversary,
    ProxyKillerAdversary,
    SourceKillerAdversary,
)
from repro.adversary.base import Adversary, ComposedAdversary, NullAdversary
from repro.adversary.collusion import (
    CoalitionStrategy,
    GreedyCoalition,
    StaticRandomCoalition,
    min_cover_size,
)
from repro.adversary.injection import (
    BurstWorkload,
    InjectionWorkload,
    PoissonWorkload,
    ScriptedWorkload,
    SteadyWorkload,
    Theorem1Workload,
    theorem1_density,
)
from repro.adversary.patterns import AlternatingPartitionFaults, ScriptedFaults
from repro.adversary.random_crash import (
    BurstCrashAdversary,
    ChurnAdversary,
    CrashOnceAdversary,
)

__all__ = [
    "Adversary",
    "AlternatingPartitionFaults",
    "BurstCrashAdversary",
    "BurstWorkload",
    "ChurnAdversary",
    "CoalitionStrategy",
    "ComposedAdversary",
    "CrashOnceAdversary",
    "GreedyCoalition",
    "GroupKillerAdversary",
    "InjectionWorkload",
    "IsolatorAdversary",
    "NullAdversary",
    "PoissonWorkload",
    "ProxyKillerAdversary",
    "ScriptedFaults",
    "ScriptedWorkload",
    "SourceKillerAdversary",
    "StaticRandomCoalition",
    "SteadyWorkload",
    "Theorem1Workload",
    "min_cover_size",
    "theorem1_density",
]
