"""Scripted (oblivious) adversarial patterns.

An *oblivious* adversary fixes its whole pattern before the execution
starts — the setting of the lower bounds (Theorems 1 and 12).  These
classes replay fixed crash/restart scripts; combine with a workload via
:class:`~repro.adversary.base.ComposedAdversary`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.adversary.base import Adversary
from repro.sim.engine import AdversaryView
from repro.sim.events import RoundDecision

__all__ = ["ScriptedFaults", "AlternatingPartitionFaults"]


class ScriptedFaults(Adversary):
    """Replay explicit ``(round, 'crash'|'restart', pid)`` triples."""

    def __init__(self, script: Sequence[Tuple[int, str, int]]):
        self._by_round: Dict[int, List[Tuple[str, int]]] = {}
        for round_no, kind, pid in script:
            if kind not in ("crash", "restart"):
                raise ValueError("unknown fault kind {!r}".format(kind))
            self._by_round.setdefault(round_no, []).append((kind, pid))

    def round_start(self, view: AdversaryView) -> RoundDecision:
        decision = RoundDecision()
        for kind, pid in self._by_round.get(view.round, []):
            if kind == "crash" and view.is_alive(pid):
                decision.crashes.add(pid)
            elif kind == "restart" and not view.is_alive(pid):
                decision.restarts.add(pid)
        return decision


class AlternatingPartitionFaults(Adversary):
    """Cyclically crash/restart whole pid blocks (heavy scripted churn).

    Divides ``[n]`` into ``blocks`` contiguous chunks; chunk ``i`` is down
    during phase ``i`` of every cycle of ``period`` rounds.  ``immune``
    pids are skipped.  A stress pattern in which, at any time, a constant
    fraction of the system is dead, yet every pair of immune processes is
    continuously alive.
    """

    def __init__(
        self,
        n: int,
        blocks: int = 4,
        period: int = 64,
        immune: Iterable[int] = (),
        start_round: int = 0,
    ):
        if blocks < 2 or period < blocks:
            raise ValueError("need blocks >= 2 and period >= blocks")
        self.n = n
        self.blocks = blocks
        self.period = period
        self.immune: Set[int] = set(immune)
        self.start_round = start_round

    def _block_of(self, pid: int) -> int:
        chunk = max(1, (self.n + self.blocks - 1) // self.blocks)
        return min(pid // chunk, self.blocks - 1)

    def _down_block(self, round_no: int) -> int:
        phase_len = self.period // self.blocks
        return ((round_no - self.start_round) // phase_len) % self.blocks

    def round_start(self, view: AdversaryView) -> RoundDecision:
        decision = RoundDecision()
        if view.round < self.start_round:
            return decision
        down = self._down_block(view.round)
        for pid in range(self.n):
            if pid in self.immune:
                continue
            should_be_down = self._block_of(pid) == down
            if should_be_down and view.is_alive(pid):
                decision.crashes.add(pid)
            elif not should_be_down and not view.is_alive(pid):
                decision.restarts.add(pid)
        return decision
