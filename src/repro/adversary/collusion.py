"""Coalition strategies for the honest-but-curious collusion model.

Collusion (Section 6) is an *information-sharing* notion: curious
processes follow the protocol but pool everything they receive.  A
coalition for rumor ``rho`` may contain any processes outside
``rho.D + {source}``; under ``CRRI(tau)`` its size is at most ``tau``.

The strategies here select coalitions against which the audit evaluates
confidentiality.  :class:`GreedyCoalition` is the adaptive worst case the
paper allows: with full hindsight it picks, per rumor and per partition,
outsiders whose pooled fragments cover as many groups as possible —
if even this coalition cannot reconstruct, no coalition of the same size
can (for that partition's holders).
"""

from __future__ import annotations

import random
from typing import Dict, FrozenSet, List, Mapping, Optional, Set, Tuple

from repro.gossip.rumor import RumorId

__all__ = ["CoalitionStrategy", "StaticRandomCoalition", "GreedyCoalition", "min_cover_size"]

# Knowledge view handed to strategies: for one rumor,
#   holders[(partition, group)] = set of OUTSIDER pids holding that fragment.
HolderMap = Mapping[Tuple[int, int], Set[int]]


def min_cover_size(
    holders: HolderMap, partition: int, num_groups: int
) -> Optional[int]:
    """Minimum number of outsiders jointly holding all groups of a partition.

    Returns ``None`` when some group's fragment never left the protocol's
    allowed set (no coalition of outsiders can reconstruct via this
    partition).  Exact branch-and-bound set cover — group counts are small
    (``tau + 1``), so this is cheap.
    """
    group_holders: List[Set[int]] = []
    for group in range(num_groups):
        pids = holders.get((partition, group), set())
        if not pids:
            return None
        group_holders.append(set(pids))

    best: List[Optional[int]] = [None]

    def search(index: int, chosen: Set[int]) -> None:
        if best[0] is not None and len(chosen) >= best[0]:
            return
        if index == len(group_holders):
            best[0] = len(chosen)
            return
        covered = chosen & group_holders[index]
        if covered:
            search(index + 1, chosen)
            return
        for pid in sorted(group_holders[index]):
            search(index + 1, chosen | {pid})

    search(0, set())
    return best[0]


class CoalitionStrategy:
    """Selects a coalition of outsiders for one rumor."""

    def select(
        self,
        rid: RumorId,
        outsiders: FrozenSet[int],
        holders: HolderMap,
        num_partitions: int,
        num_groups: int,
        tau: int,
    ) -> Set[int]:
        raise NotImplementedError


class StaticRandomCoalition(CoalitionStrategy):
    """Oblivious coalition: ``tau`` uniform outsiders, fixed per rumor."""

    def __init__(self, rng: random.Random):
        self.rng = rng

    def select(
        self,
        rid: RumorId,
        outsiders: FrozenSet[int],
        holders: HolderMap,
        num_partitions: int,
        num_groups: int,
        tau: int,
    ) -> Set[int]:
        pool = sorted(outsiders)
        return set(self.rng.sample(pool, min(tau, len(pool))))


class GreedyCoalition(CoalitionStrategy):
    """Adaptive worst case: maximise distinct fragment coverage.

    For each partition, take the minimum cover if it fits in ``tau``;
    otherwise pick the ``tau`` outsiders covering the most groups of the
    best partition.  If this coalition cannot reconstruct the rumor, no
    ``tau``-coalition can reconstruct it through any single partition.
    """

    def select(
        self,
        rid: RumorId,
        outsiders: FrozenSet[int],
        holders: HolderMap,
        num_partitions: int,
        num_groups: int,
        tau: int,
    ) -> Set[int]:
        # First preference: a full cover within budget.
        for partition in range(num_partitions):
            cover = self._cover_for_partition(
                holders, partition, num_groups, tau
            )
            if cover is not None:
                return cover
        # Fall back to the largest partial coverage.
        best: Set[int] = set()
        best_groups = -1
        for partition in range(num_partitions):
            coalition, groups = self._greedy_partial(
                holders, partition, num_groups, tau
            )
            if groups > best_groups:
                best, best_groups = coalition, groups
        return best

    @staticmethod
    def _cover_for_partition(
        holders: HolderMap, partition: int, num_groups: int, tau: int
    ) -> Optional[Set[int]]:
        size = min_cover_size(holders, partition, num_groups)
        if size is None or size > tau:
            return None
        # Reconstruct one minimal cover greedily (size is known feasible).
        chosen: Set[int] = set()
        for group in range(num_groups):
            pids = holders.get((partition, group), set())
            if chosen & pids:
                continue
            chosen.add(min(pids))
        return chosen if len(chosen) <= tau else None

    @staticmethod
    def _greedy_partial(
        holders: HolderMap, partition: int, num_groups: int, tau: int
    ) -> Tuple[Set[int], int]:
        coalition: Set[int] = set()
        covered: Set[int] = set()
        while len(coalition) < tau:
            best_pid, best_gain = None, 0
            candidates: Dict[int, Set[int]] = {}
            for group in range(num_groups):
                if group in covered:
                    continue
                for pid in holders.get((partition, group), set()):
                    if pid in coalition:
                        continue
                    candidates.setdefault(pid, set()).add(group)
            for pid, groups in sorted(candidates.items()):
                if len(groups) > best_gain:
                    best_pid, best_gain = pid, len(groups)
            if best_pid is None:
                break
            coalition.add(best_pid)
            for group in range(num_groups):
                if best_pid in holders.get((partition, group), set()):
                    covered.add(group)
        return coalition, len(covered)
