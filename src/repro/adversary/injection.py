"""Rumor-injection workloads (the "RI" of the CRRI adversary).

Each workload is an injection-only :class:`~repro.adversary.base.Adversary`
that fabricates :class:`~repro.gossip.rumor.Rumor` objects round by round.
Besides generic steady/Poisson/burst traffic, this module builds the exact
adversarial layouts of the lower-bound proofs:

* :class:`Theorem1Workload` — every process injects one rumor in the same
  round; each process joins each destination set independently with
  probability ``x/n`` where ``x = n^(1/2 - 2/c)`` (proof of Theorem 1);
  Theorem 12 reuses the identical layout.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.adversary.base import Adversary
from repro.gossip.rumor import Rumor, RumorId
from repro.sim.engine import AdversaryView
from repro.sim.events import RoundDecision

__all__ = [
    "InjectionWorkload",
    "ScriptedWorkload",
    "SteadyWorkload",
    "PoissonWorkload",
    "BurstWorkload",
    "GroupTrafficWorkload",
    "Theorem1Workload",
    "theorem1_density",
]


class InjectionWorkload(Adversary):
    """Base class managing per-source sequence numbers and payloads.

    ``seq_start`` namespaces the per-source sequence counters: when two
    workloads composed into one adversary may pick the same source, give
    them disjoint ranges (e.g. 0 and 1_000_000) so rumor ids stay
    globally unique.
    """

    def __init__(
        self, rng: random.Random, payload_size: int = 16, seq_start: int = 0
    ):
        self.rng = rng
        self.payload_size = payload_size
        self.seq_start = seq_start
        self._sequences: Dict[int, int] = {}
        self.injected: List[Rumor] = []

    def _next_seq(self, src: int) -> int:
        seq = self._sequences.get(src, self.seq_start)
        self._sequences[src] = seq + 1
        return seq

    def make_rumor(
        self,
        src: int,
        round_no: int,
        deadline: int,
        dest: Iterable[int],
        data: Optional[bytes] = None,
    ) -> Rumor:
        rumor = Rumor(
            rid=RumorId(src, self._next_seq(src)),
            data=data if data is not None else self.rng.randbytes(self.payload_size),
            deadline=deadline,
            dest=frozenset(dest),
            injected_at=round_no,
        )
        self.injected.append(rumor)
        return rumor

    def random_destinations(
        self, n: int, size: int, exclude: Iterable[int] = ()
    ) -> Set[int]:
        pool = [p for p in range(n) if p not in set(exclude)]
        size = min(size, len(pool))
        return set(self.rng.sample(pool, size)) if size else set()


class ScriptedWorkload(InjectionWorkload):
    """Inject a fixed script: ``(round, src, deadline, dest[, data])``."""

    def __init__(
        self,
        script: Sequence[Tuple],
        rng: random.Random,
        payload_size: int = 16,
        seq_start: int = 0,
    ):
        super().__init__(rng, payload_size, seq_start)
        self._by_round: Dict[int, List[Tuple]] = {}
        for entry in script:
            self._by_round.setdefault(entry[0], []).append(entry)

    def round_start(self, view: AdversaryView) -> RoundDecision:
        decision = RoundDecision()
        for entry in self._by_round.get(view.round, []):
            round_no, src, deadline, dest = entry[:4]
            data = entry[4] if len(entry) > 4 else None
            if not view.is_alive(src):
                continue  # the model forbids injecting at crashed processes
            rumor = self.make_rumor(src, round_no, deadline, dest, data)
            decision.injections.append((src, rumor))
        return decision


class SteadyWorkload(InjectionWorkload):
    """``rate`` random sources inject every ``period`` rounds.

    Destination sets are uniform random subsets of size ``dest_size``.
    Deadlines are drawn from ``deadlines`` (uniformly).
    """

    def __init__(
        self,
        n: int,
        rng: random.Random,
        rate: int = 1,
        period: int = 1,
        dest_size: int = 4,
        deadlines: Sequence[int] = (128,),
        start_round: int = 0,
        stop_round: Optional[int] = None,
        payload_size: int = 16,
        include_source: bool = False,
        seq_start: int = 0,
    ):
        super().__init__(rng, payload_size, seq_start)
        if rate < 0 or period < 1:
            raise ValueError("rate must be >= 0, period >= 1")
        self.n = n
        self.rate = rate
        self.period = period
        self.dest_size = dest_size
        self.deadlines = list(deadlines)
        self.start_round = start_round
        self.stop_round = stop_round
        self.include_source = include_source

    def round_start(self, view: AdversaryView) -> RoundDecision:
        decision = RoundDecision()
        round_no = view.round
        if round_no < self.start_round:
            return decision
        if self.stop_round is not None and round_no >= self.stop_round:
            return decision
        if (round_no - self.start_round) % self.period:
            return decision
        alive = sorted(view.alive_pids())
        if not alive:
            return decision
        sources = self.rng.sample(alive, min(self.rate, len(alive)))
        for src in sources:
            dest = self.random_destinations(
                self.n, self.dest_size, exclude=() if self.include_source else (src,)
            )
            if self.include_source:
                dest.add(src)
            if not dest:
                continue
            deadline = self.rng.choice(self.deadlines)
            rumor = self.make_rumor(src, round_no, deadline, dest)
            decision.injections.append((src, rumor))
        return decision


class PoissonWorkload(InjectionWorkload):
    """Each alive process independently injects with probability ``p``."""

    def __init__(
        self,
        n: int,
        rng: random.Random,
        probability: float,
        dest_size: int = 4,
        deadlines: Sequence[int] = (128,),
        start_round: int = 0,
        stop_round: Optional[int] = None,
        payload_size: int = 16,
    ):
        super().__init__(rng, payload_size)
        if not 0 <= probability <= 1:
            raise ValueError("probability must be in [0, 1]")
        self.n = n
        self.probability = probability
        self.dest_size = dest_size
        self.deadlines = list(deadlines)
        self.start_round = start_round
        self.stop_round = stop_round

    def round_start(self, view: AdversaryView) -> RoundDecision:
        decision = RoundDecision()
        round_no = view.round
        if round_no < self.start_round:
            return decision
        if self.stop_round is not None and round_no >= self.stop_round:
            return decision
        for src in sorted(view.alive_pids()):
            if self.rng.random() >= self.probability:
                continue
            dest = self.random_destinations(self.n, self.dest_size, exclude=(src,))
            if not dest:
                continue
            deadline = self.rng.choice(self.deadlines)
            rumor = self.make_rumor(src, round_no, deadline, dest)
            decision.injections.append((src, rumor))
        return decision


class BurstWorkload(InjectionWorkload):
    """At each round in ``burst_rounds``, every alive process injects."""

    def __init__(
        self,
        n: int,
        rng: random.Random,
        burst_rounds: Sequence[int],
        dest_size: int = 4,
        deadline: int = 128,
        payload_size: int = 16,
    ):
        super().__init__(rng, payload_size)
        self.n = n
        self.burst_rounds = set(burst_rounds)
        self.dest_size = dest_size
        self.deadline = deadline

    def round_start(self, view: AdversaryView) -> RoundDecision:
        decision = RoundDecision()
        if view.round not in self.burst_rounds:
            return decision
        for src in sorted(view.alive_pids()):
            dest = self.random_destinations(self.n, self.dest_size, exclude=(src,))
            if not dest:
                continue
            rumor = self.make_rumor(src, view.round, self.deadline, dest)
            decision.injections.append((src, rumor))
        return decision


class GroupTrafficWorkload(InjectionWorkload):
    """Traffic confined to a fixed participant set.

    Every ``period`` rounds one participant (round-robin) injects a rumor
    whose destination set is the remaining participants.  Used with fault
    models whose ``immune`` set equals the participants: their rumors stay
    admissible however hard the rest of the system churns.
    """

    def __init__(
        self,
        participants: Sequence[int],
        rng: random.Random,
        deadline: int = 128,
        period: int = 8,
        start_round: int = 0,
        stop_round: Optional[int] = None,
        payload_size: int = 16,
    ):
        super().__init__(rng, payload_size)
        if len(participants) < 2:
            raise ValueError("need at least two participants")
        self.participants = list(participants)
        self.deadline = deadline
        self.period = period
        self.start_round = start_round
        self.stop_round = stop_round
        self._turn = 0

    def round_start(self, view: AdversaryView) -> RoundDecision:
        decision = RoundDecision()
        round_no = view.round
        if round_no < self.start_round:
            return decision
        if self.stop_round is not None and round_no >= self.stop_round:
            return decision
        if (round_no - self.start_round) % self.period:
            return decision
        src = self.participants[self._turn % len(self.participants)]
        self._turn += 1
        if not view.is_alive(src):
            return decision
        dest = set(self.participants) - {src}
        rumor = self.make_rumor(src, round_no, self.deadline, dest)
        decision.injections.append((src, rumor))
        return decision


def theorem1_density(n: int, c: int) -> float:
    """The proof's destination density ``x/n`` with ``x = n^(1/2 - 2/c)``.

    ``c = ceil(2/eps)`` trades the exponent deficit ``eps`` against the
    bound on rumors-per-message.
    """
    if c <= 4:
        raise ValueError("c must exceed 4 for a positive exponent")
    x = n ** (0.5 - 2.0 / c)
    return min(1.0, x / n)


class Theorem1Workload(InjectionWorkload):
    """The oblivious layout of Theorems 1 and 12.

    At ``inject_round`` every process receives one rumor with uniform
    deadline ``dmax``; each process independently joins each destination
    set with probability ``x/n``.
    """

    def __init__(
        self,
        n: int,
        rng: random.Random,
        c: int = 8,
        dmax: int = 128,
        inject_round: int = 0,
        payload_size: int = 16,
    ):
        super().__init__(rng, payload_size)
        self.n = n
        self.c = c
        self.dmax = dmax
        self.inject_round = inject_round
        self.density = theorem1_density(n, c)
        self.expected_x = n ** (0.5 - 2.0 / c)

    def round_start(self, view: AdversaryView) -> RoundDecision:
        decision = RoundDecision()
        if view.round != self.inject_round:
            return decision
        for src in range(self.n):
            if not view.is_alive(src):
                continue
            dest = {
                pid
                for pid in range(self.n)
                if pid != src and self.rng.random() < self.density
            }
            if not dest:
                continue
            rumor = self.make_rumor(src, view.round, self.dmax, dest)
            decision.injections.append((src, rumor))
        return decision
