"""Adaptive, omniscient attackers.

The paper's adversary "can make decisions in a round t based on the events
in all prior rounds before t, as well as the random choices being made in
round t itself".  These adversaries implement the attack strategies the
proofs defend against:

* :class:`ProxyKillerAdversary` — "every time a source sends a rumor (or
  rumor fragment) to another process, the adversary may choose to
  immediately crash that recipient" (Section 1): observes this round's
  proxy requests and kills the sampled proxies before they can act.
* :class:`GroupKillerAdversary` — wipes out one whole group of one
  partition (the reason a single split is insufficient and CONGOS runs
  ``log n`` partitions).
* :class:`IsolatorAdversary` — crashes everyone a victim process talks to,
  isolating it in terms of sending.
* :class:`SourceKillerAdversary` — kills a rumor's source right after
  injection (the rumor becomes inadmissible; QoD demands nothing, and the
  benches check nothing *breaks*).
"""

from __future__ import annotations

import random
from typing import List, Optional, Set

from repro.adversary.base import Adversary
from repro.core.proxy import ProxyRequest
from repro.sim.engine import AdversaryView
from repro.sim.events import MidRoundDecision, RoundDecision
from repro.sim.messages import Message, ServiceTags

__all__ = [
    "ProxyKillerAdversary",
    "GroupKillerAdversary",
    "IsolatorAdversary",
    "SourceKillerAdversary",
]


class ProxyKillerAdversary(Adversary):
    """Crashes processes the moment they are sampled as proxies.

    ``budget_per_round`` and ``total_budget`` bound the damage (an
    unbounded proxy killer would trivially have to kill whole groups,
    which :class:`GroupKillerAdversary` models directly).  Killed proxies
    also lose the request messages addressed to them this round.
    ``restart_after`` optionally revives victims, modelling churn.
    """

    def __init__(
        self,
        budget_per_round: int = 4,
        total_budget: Optional[int] = None,
        restart_after: Optional[int] = None,
        spare: Set[int] = frozenset(),
    ):
        self.budget_per_round = budget_per_round
        self.total_budget = total_budget
        self.restart_after = restart_after
        self.spare = set(spare)
        self.killed_total = 0
        self._pending_restarts: dict = {}

    def round_start(self, view: AdversaryView) -> RoundDecision:
        decision = RoundDecision()
        due = self._pending_restarts.pop(view.round, None)
        if due:
            decision.restarts |= {p for p in due if not view.is_alive(p)}
        return decision

    def mid_round(
        self, view: AdversaryView, outgoing: List[Message]
    ) -> MidRoundDecision:
        decision = MidRoundDecision()
        if self.total_budget is not None and self.killed_total >= self.total_budget:
            return decision
        victims: Set[int] = set()
        untouchable = view.touched_this_round()
        for index, message in enumerate(outgoing):
            if message.service != ServiceTags.PROXY:
                continue
            if not isinstance(message.payload, ProxyRequest):
                continue
            target = message.dst
            if target in self.spare or not view.is_alive(target):
                continue
            if target in untouchable:
                continue  # already crashed/restarted this round
            at_budget = (
                len(victims) >= self.budget_per_round
                or (
                    self.total_budget is not None
                    and self.killed_total + len(victims) >= self.total_budget
                )
            )
            if target not in victims and at_budget:
                continue
            victims.add(target)
            decision.dropped_messages.add(index)
        decision.crashes = victims
        self.killed_total += len(victims)
        if self.restart_after is not None and victims:
            key = view.round + self.restart_after
            self._pending_restarts.setdefault(key, set()).update(victims)
        return decision


class GroupKillerAdversary(Adversary):
    """Crashes an entire group of one partition at a given round."""

    def __init__(
        self,
        members: Set[int],
        crash_round: int,
        restart_round: Optional[int] = None,
        spare: Set[int] = frozenset(),
    ):
        self.members = set(members) - set(spare)
        self.crash_round = crash_round
        self.restart_round = restart_round

    def round_start(self, view: AdversaryView) -> RoundDecision:
        decision = RoundDecision()
        if view.round == self.crash_round:
            decision.crashes |= {p for p in self.members if view.is_alive(p)}
        elif self.restart_round is not None and view.round == self.restart_round:
            decision.restarts |= {p for p in self.members if not view.is_alive(p)}
        return decision


class IsolatorAdversary(Adversary):
    """Crashes every process the victim sends to (receiver isolation).

    Bounded by ``total_budget``; the victim itself is never crashed.
    """

    def __init__(self, victim: int, total_budget: int = 16):
        self.victim = victim
        self.total_budget = total_budget
        self.killed_total = 0

    def mid_round(
        self, view: AdversaryView, outgoing: List[Message]
    ) -> MidRoundDecision:
        decision = MidRoundDecision()
        untouchable = view.touched_this_round()
        for index, message in enumerate(outgoing):
            if message.src != self.victim:
                continue
            target = message.dst
            if target == self.victim or not view.is_alive(target):
                continue
            if target in untouchable:
                continue
            if target in decision.crashes:
                decision.dropped_messages.add(index)
                continue
            if self.killed_total + len(decision.crashes) >= self.total_budget:
                break
            decision.crashes.add(target)
            decision.dropped_messages.add(index)
        self.killed_total += len(decision.crashes)
        return decision


class SourceKillerAdversary(Adversary):
    """Kills rumor sources the round after they inject.

    The victims' rumors become inadmissible; Quality of Delivery requires
    nothing for them, but the system must not break, leak, or miss other
    admissible rumors.
    """

    def __init__(self, rng: random.Random, kill_probability: float = 1.0):
        self.rng = rng
        self.kill_probability = kill_probability

    def round_start(self, view: AdversaryView) -> RoundDecision:
        decision = RoundDecision()
        for event in view.event_log.injections:
            if event.round_no != view.round - 1:
                continue
            pid = event.pid
            if pid in decision.crashes or not view.is_alive(pid):
                continue
            if self.rng.random() < self.kill_probability:
                decision.crashes.add(pid)
        return decision
