"""repro.api — the stable facade over the reproduction.

Examples, tests and downstream notebooks used to import run/sweep/trace
machinery from five submodules (``harness.runner``, ``harness.scenarios``,
``analysis.sweeps``, ``obs.*``, ``core.config``); this module is the one
import that stays put while the internals keep moving:

    from repro.api import CongosParams, run_scenario, sweep, trace

    result = run_scenario("steady", n=16, rounds=400, seed=7)
    print(result.summary())

    hardened = sweep("direct", [{"drop": 0.3}], seeds=(0, 1),
                     n=16, rounds=200, deadline=32,
                     params=CongosParams.preset("hardened"))

Open (service-shaped) workloads get the same one-liner treatment:

    from repro.api import ArrivalSpec, run_open

    result = run_open(ArrivalSpec(process="bursty", rate=4.0),
                      n=64, rounds=300)
    print(result.summary()["load"])

Everything re-exported here is covered by the acceptance tests; anything
not listed in ``__all__`` is an internal that may change between PRs.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, Optional, Tuple, Union

from repro.analysis.sweeps import CellResult, SweepResult, grid, sweep_congos
from repro.core.config import CongosParams
from repro.gossip.rumor import Rumor, RumorId, make_rumor
from repro.harness.runner import RunResult, Scenario, run_congos_scenario
from repro.harness.scenarios import (
    BUILDERS,
    builder_name,
    get_builder,
    register_builder,
)
from repro.load.admission import AdmissionPolicy
from repro.load.arrivals import ArrivalSpec
from repro.obs.instrument import Telemetry
from repro.obs.sink import JsonlSink
from repro.obs.timeline import RumorTimeline

__all__ = [
    "AdmissionPolicy",
    "ArrivalSpec",
    "BUILDERS",
    "CellResult",
    "CongosParams",
    "Rumor",
    "RumorId",
    "RunResult",
    "Scenario",
    "SweepResult",
    "builder_name",
    "get_builder",
    "grid",
    "make_rumor",
    "presets",
    "register_builder",
    "run_open",
    "run_scenario",
    "sweep",
    "trace",
]


def run_scenario(
    scenario: Union[Scenario, str],
    seed: int = 0,
    observers: Iterable = (),
    telemetry: Optional[Telemetry] = None,
    backend: Optional[str] = None,
    net: Optional[dict] = None,
    engine: Optional[str] = None,
    **kwargs: object,
) -> RunResult:
    """Run one fully audited CONGOS scenario.

    ``scenario`` is either a built :class:`Scenario` or a registry name
    (``"steady"``, ``"chaos"``, ``"direct"``, ``"open"``, ...; see
    :data:`BUILDERS`), in which case ``seed`` and the remaining keyword
    arguments go to the builder.  Returns the :class:`RunResult` with
    both auditors attached.

    ``backend`` overrides the scenario's execution backend (``"inproc"``
    or ``"sharded"``); ``net`` supplies sharded-backend options such as
    ``{"workers": 2, "transport": "tcp"}``.  Both backends produce the
    same audited results.  ``engine`` selects the round kernel:
    ``"object"`` (default) or ``"array"`` (the vectorized
    :mod:`repro.fastcore` kernel; needs ``pip install repro[fast]`` and
    is statistically — not bit — equivalent, see DESIGN.md §11).
    """
    if isinstance(scenario, str):
        scenario = get_builder(scenario)(seed=seed, **kwargs)
    else:
        if kwargs:
            raise TypeError(
                "builder kwargs {} only apply when scenario is a registry "
                "name, not an already-built Scenario".format(sorted(kwargs))
            )
        if seed != 0 and seed != scenario.seed:
            raise TypeError(
                "seed={} only applies when scenario is a registry name, "
                "not an already-built Scenario (built with seed={})".format(
                    seed, scenario.seed
                )
            )
    if backend is not None or net is not None or engine is not None:
        overrides: dict = {}
        if backend is not None:
            overrides["backend"] = backend
        if net is not None:
            overrides["net"] = net
        if engine is not None:
            overrides["engine"] = engine
        scenario = dataclasses.replace(scenario, **overrides)
    return run_congos_scenario(
        scenario, observers=observers, telemetry=telemetry
    )


def run_open(
    arrival: Optional[ArrivalSpec] = None,
    admission: Optional[AdmissionPolicy] = None,
    seed: int = 0,
    observers: Iterable = (),
    telemetry: Optional[Telemetry] = None,
    backend: Optional[str] = None,
    net: Optional[dict] = None,
    engine: Optional[str] = None,
    **kwargs: object,
) -> RunResult:
    """Run one open-workload (service-model) scenario, fully audited.

    ``arrival`` describes the offered traffic (:class:`ArrivalSpec`;
    ``None`` means the builder's default Poisson stream) and
    ``admission`` the load-leveling policy (:class:`AdmissionPolicy`;
    ``None`` means bounded defaults with the core's injection budget).
    Remaining keyword arguments (``n``, ``rounds``, ``preset``, ...) go
    to the ``"open"`` builder; spelling a field both ways — in a spec
    object *and* as a builder kwarg — is rejected rather than silently
    resolved.  The returned result carries the SLO section in
    ``result.summary()["load"]``.
    """
    expanded: Dict[str, object] = {}
    if arrival is not None:
        spec_fields = arrival.to_dict()
        # ``deadline`` is builder shorthand for a one-deadline mix; the
        # spec always speaks ``deadlines``.
        expanded.update(spec_fields)
    if admission is not None:
        expanded.update(admission.to_dict())
    clash = sorted(set(expanded) & set(kwargs))
    if clash:
        raise TypeError(
            "kwargs {} conflict with the arrival/admission specs; set each "
            "knob in exactly one place".format(clash)
        )
    expanded.update(kwargs)
    return run_scenario(
        "open",
        seed=seed,
        observers=observers,
        telemetry=telemetry,
        backend=backend,
        net=net,
        engine=engine,
        **expanded,
    )


def presets() -> Dict[str, str]:
    """Registered :meth:`CongosParams.preset` names with one-line
    descriptions — the discovery surface, so callers never import
    ``repro.core.config`` just to learn the names.

        >>> sorted(presets())
        ['default', 'hardened', 'lean', 'paper']
    """
    return CongosParams.preset_descriptions()


def sweep(
    scenario: Union[str, object],
    cells: Iterable,
    seeds=(0,),
    jobs: int = 1,
    backend: Optional[str] = None,
    net: Optional[dict] = None,
    **fixed: object,
) -> SweepResult:
    """Sweep a scenario builder over a cell grid on the exec pool.

    Thin alias for :func:`repro.analysis.sweeps.sweep_congos`; build the
    ``cells`` with :func:`grid`.  Results are bit-identical at any
    ``jobs`` setting.

    ``backend``/``net`` mirror :func:`run_scenario`'s overrides (the
    facade is symmetric): ``backend="sharded"`` runs every cell on the
    multi-process backend with ``net`` options such as
    ``{"workers": 2}``, producing the same audited records.
    """
    if backend is not None:
        fixed["backend"] = backend
    if net is not None:
        fixed["net"] = net
    return sweep_congos(scenario, cells, seeds=seeds, jobs=jobs, **fixed)


def trace(
    scenario: Union[Scenario, str],
    seed: int = 0,
    jsonl: Optional[str] = None,
    **kwargs: object,
) -> Tuple[RunResult, RumorTimeline]:
    """Run a scenario with full rumor-lifecycle telemetry.

    Returns ``(result, timeline)``; the :class:`RumorTimeline` answers
    per-rumor questions (``timeline.replay(rid)``,
    ``timeline.lifecycles()``).  Pass ``jsonl`` to also export every
    event (and the final lifecycles) to a JSONL file for offline tools.

    Keyword arguments pass through to :func:`run_scenario`, including
    its ``backend``/``net`` overrides — ``trace(..., backend="sharded",
    net={"workers": 2})`` traces the multi-process backend with workers'
    events merged into the same (sanitized, leak-safe) stream.
    """
    timeline = RumorTimeline()
    if jsonl is None:
        telemetry = Telemetry()
        telemetry.subscribe(timeline)
        result = run_scenario(
            scenario,
            seed=seed,
            observers=[timeline],
            telemetry=telemetry,
            **kwargs,
        )
    else:
        with JsonlSink(path=jsonl) as sink:
            telemetry = Telemetry(sinks=[sink])
            telemetry.subscribe(timeline)
            result = run_scenario(
                scenario,
                seed=seed,
                observers=[timeline],
                telemetry=telemetry,
                **kwargs,
            )
            timeline.export(sink)
    return result, timeline
