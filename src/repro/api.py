"""repro.api — the stable facade over the reproduction.

Examples, tests and downstream notebooks used to import run/sweep/trace
machinery from five submodules (``harness.runner``, ``harness.scenarios``,
``analysis.sweeps``, ``obs.*``, ``core.config``); this module is the one
import that stays put while the internals keep moving:

    from repro.api import CongosParams, run_scenario, sweep, trace

    result = run_scenario("steady", n=16, rounds=400, seed=7)
    print(result.summary())

    hardened = sweep("direct", [{"drop": 0.3}], seeds=(0, 1),
                     n=16, rounds=200, deadline=32,
                     params=CongosParams.preset("hardened"))

Everything re-exported here is covered by the acceptance tests; anything
not listed in ``__all__`` is an internal that may change between PRs.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Optional, Tuple, Union

from repro.analysis.sweeps import CellResult, SweepResult, grid, sweep_congos
from repro.core.config import CongosParams
from repro.gossip.rumor import Rumor, RumorId, make_rumor
from repro.harness.runner import RunResult, Scenario, run_congos_scenario
from repro.harness.scenarios import (
    BUILDERS,
    builder_name,
    get_builder,
    register_builder,
)
from repro.obs.instrument import Telemetry
from repro.obs.sink import JsonlSink
from repro.obs.timeline import RumorTimeline

__all__ = [
    "BUILDERS",
    "CellResult",
    "CongosParams",
    "Rumor",
    "RumorId",
    "RunResult",
    "Scenario",
    "SweepResult",
    "builder_name",
    "get_builder",
    "grid",
    "make_rumor",
    "register_builder",
    "run_scenario",
    "sweep",
    "trace",
]


def run_scenario(
    scenario: Union[Scenario, str],
    seed: int = 0,
    observers: Iterable = (),
    telemetry: Optional[Telemetry] = None,
    backend: Optional[str] = None,
    net: Optional[dict] = None,
    **kwargs: object,
) -> RunResult:
    """Run one fully audited CONGOS scenario.

    ``scenario`` is either a built :class:`Scenario` or a registry name
    (``"steady"``, ``"chaos"``, ``"direct"``, ...; see :data:`BUILDERS`),
    in which case ``seed`` and the remaining keyword arguments go to the
    builder.  Returns the :class:`RunResult` with both auditors attached.

    ``backend`` overrides the scenario's execution backend (``"inproc"``
    or ``"sharded"``); ``net`` supplies sharded-backend options such as
    ``{"workers": 2, "transport": "tcp"}``.  Both backends produce the
    same audited results.
    """
    if isinstance(scenario, str):
        scenario = get_builder(scenario)(seed=seed, **kwargs)
    elif kwargs:
        raise TypeError(
            "builder kwargs {} only apply when scenario is a registry "
            "name, not an already-built Scenario".format(sorted(kwargs))
        )
    if backend is not None or net is not None:
        overrides: dict = {}
        if backend is not None:
            overrides["backend"] = backend
        if net is not None:
            overrides["net"] = net
        scenario = dataclasses.replace(scenario, **overrides)
    return run_congos_scenario(
        scenario, observers=observers, telemetry=telemetry
    )


def sweep(
    scenario: Union[str, object],
    cells: Iterable,
    seeds=(0,),
    jobs: int = 1,
    **fixed: object,
) -> SweepResult:
    """Sweep a scenario builder over a cell grid on the exec pool.

    Thin alias for :func:`repro.analysis.sweeps.sweep_congos`; build the
    ``cells`` with :func:`grid`.  Results are bit-identical at any
    ``jobs`` setting.
    """
    return sweep_congos(scenario, cells, seeds=seeds, jobs=jobs, **fixed)


def trace(
    scenario: Union[Scenario, str],
    seed: int = 0,
    jsonl: Optional[str] = None,
    **kwargs: object,
) -> Tuple[RunResult, RumorTimeline]:
    """Run a scenario with full rumor-lifecycle telemetry.

    Returns ``(result, timeline)``; the :class:`RumorTimeline` answers
    per-rumor questions (``timeline.replay(rid)``,
    ``timeline.lifecycles()``).  Pass ``jsonl`` to also export every
    event (and the final lifecycles) to a JSONL file for offline tools.
    """
    timeline = RumorTimeline()
    if jsonl is None:
        telemetry = Telemetry()
        telemetry.subscribe(timeline)
        result = run_scenario(
            scenario,
            seed=seed,
            observers=[timeline],
            telemetry=telemetry,
            **kwargs,
        )
    else:
        with JsonlSink(path=jsonl) as sink:
            telemetry = Telemetry(sinks=[sink])
            telemetry.subscribe(timeline)
            result = run_scenario(
                scenario,
                seed=seed,
                observers=[timeline],
                telemetry=telemetry,
                **kwargs,
            )
            timeline.export(sink)
    return result, timeline
