"""Baseline protocols: direct send, strongly confidential gossip, plain
(non-confidential) gossip, and the LKH crypto cost model."""

from repro.baselines.direct import DirectSendNode, direct_factory
from repro.baselines.key_tree import (
    KeyTreeCostModel,
    KeyTreeReport,
    rekey_cost,
    subtree_cover,
    tree_height,
)
from repro.baselines.plain_gossip import PlainGossipNode, plain_gossip_factory
from repro.baselines.strongly_confidential import (
    StronglyConfidentialNode,
    strongly_confidential_factory,
)

__all__ = [
    "DirectSendNode",
    "KeyTreeCostModel",
    "KeyTreeReport",
    "PlainGossipNode",
    "StronglyConfidentialNode",
    "direct_factory",
    "plain_gossip_factory",
    "rekey_cost",
    "strongly_confidential_factory",
    "subtree_cover",
    "tree_height",
]
