"""Logical-Key-Hierarchy (LKH) cost model: the cryptographic alternative.

The paper's introduction discusses multicast-security schemes in which
"the processes may be arranged as leaves on a binary tree, where each
internal node of the tree contains a cryptographic key; each process is
given access to every key found on the root-to-leaf path" — and argues
they are efficient for *stable* groups but expensive "when the groups are
changing rapidly, or when there are no fixed groups, i.e., when each
rumor has a different destination set".

This module quantifies that claim without implementing actual
cryptography (key bits are irrelevant to message complexity):

* :func:`subtree_cover` — the classic complete-subtree method: the number
  of encryptions needed to address an arbitrary destination set ``D`` is
  the size of the minimal set of maximal subtrees whose leaves are exactly
  ``D`` (``O(|D| log(n/|D|))`` in the worst case).
* :class:`KeyTreeCostModel` — per-rumor send cost under three regimes:
  fresh per-rumor groups (subset-cover every time), re-keyed persistent
  groups (pay ``O(log n)`` per membership change since the previous rumor
  of the same source), and churn re-keying (every crash forces key
  rotation on the victim's root path).

Bench E11 runs this model against the same workloads as CONGOS.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

__all__ = [
    "subtree_cover",
    "tree_height",
    "rekey_cost",
    "KeyTreeCostModel",
    "KeyTreeReport",
]


def tree_height(n: int) -> int:
    """Height of the complete binary key tree over ``n`` leaves."""
    if n < 1:
        raise ValueError("n must be positive")
    return max(1, math.ceil(math.log2(n))) if n > 1 else 1


def subtree_cover(n: int, dest: Iterable[int]) -> List[Tuple[int, int]]:
    """Minimal complete-subtree cover of ``dest`` in a tree over ``[n]``.

    Returns the cover as ``(level, index)`` pairs, where level 0 holds the
    leaves.  A subtree is included iff *all* of its leaves (restricted to
    ``[n]``) are in ``dest`` and its parent is not fully covered.  The
    cover size is the number of encryptions a broadcast to exactly
    ``dest`` requires under the complete-subtree method.
    """
    members: Set[int] = set(dest)
    if not members:
        return []
    if not members <= set(range(n)):
        raise ValueError("destination set contains pids outside [n)")
    height = tree_height(n)
    cover: List[Tuple[int, int]] = []

    def walk(lo: int, level: int) -> None:
        span = 1 << level
        real = range(lo, min(lo + span, n))
        hit = sum(1 for pid in real if pid in members)
        if hit == 0:
            return
        if hit == len(real):
            cover.append((level, lo // span))
            return
        walk(lo, level - 1)
        walk(lo + span // 2, level - 1)

    walk(0, height)
    return cover


def rekey_cost(n: int, changes: int) -> int:
    """Messages to re-key after ``changes`` membership changes.

    Each join/leave refreshes the keys on one root-to-leaf path; every
    refreshed key is communicated to the two sibling subtrees —
    ``2 * height`` messages per change (the standard LKH bound).
    """
    return changes * 2 * tree_height(n)


@dataclass
class KeyTreeReport:
    """Aggregate cost of serving a rumor sequence with LKH."""

    rumors: int = 0
    payload_messages: int = 0
    rekey_messages: int = 0
    churn_rekey_messages: int = 0
    per_rumor: List[int] = field(default_factory=list)

    @property
    def total_messages(self) -> int:
        return self.payload_messages + self.rekey_messages + self.churn_rekey_messages

    def mean_per_rumor(self) -> float:
        if not self.per_rumor:
            return 0.0
        return sum(self.per_rumor) / len(self.per_rumor)

    def summary(self) -> Dict[str, object]:
        return {
            "rumors": self.rumors,
            "payload_messages": self.payload_messages,
            "rekey_messages": self.rekey_messages,
            "churn_rekey_messages": self.churn_rekey_messages,
            "total": self.total_messages,
            "mean_per_rumor": round(self.mean_per_rumor(), 2),
        }


class KeyTreeCostModel:
    """Accounts LKH traffic for a stream of rumors and faults.

    Modes
    -----
    ``"subset-cover"``
        Stateless: every rumor is one multicast under a fresh subset
        cover — ``cover_size`` encrypted copies (counted as messages).
    ``"rekey"``
        Stateful per source: the source maintains a group key for its
        previous destination set and pays ``2 log n`` messages per member
        joined/left since its last rumor, plus one payload multicast.
    """

    def __init__(self, n: int, mode: str = "subset-cover"):
        if mode not in ("subset-cover", "rekey"):
            raise ValueError("mode must be 'subset-cover' or 'rekey'")
        self.n = n
        self.mode = mode
        self._previous_group: Dict[int, FrozenSet[int]] = {}
        self.report = KeyTreeReport()

    def on_rumor(self, src: int, dest: Iterable[int]) -> int:
        """Account one rumor; returns its message cost."""
        members = frozenset(dest)
        cost = 0
        if self.mode == "subset-cover":
            cost = max(1, len(subtree_cover(self.n, members)))
            self.report.payload_messages += cost
        else:
            previous = self._previous_group.get(src, frozenset())
            changes = len(previous ^ members)
            rekey = rekey_cost(self.n, changes)
            self.report.rekey_messages += rekey
            self.report.payload_messages += 1
            self._previous_group[src] = members
            cost = rekey + 1
        self.report.rumors += 1
        self.report.per_rumor.append(cost)
        return cost

    def on_crash(self, pid: int) -> int:
        """A crashed member must be evicted from every group key it held.

        Conservative model: one root-path re-key per group currently
        containing the victim.
        """
        cost = 0
        for src, group in self._previous_group.items():
            if pid in group:
                cost += rekey_cost(self.n, 1)
                self._previous_group[src] = group - {pid}
        if self.mode == "subset-cover":
            # Stateless mode still rotates the victim's path keys once.
            cost += rekey_cost(self.n, 1)
        self.report.churn_rekey_messages += cost
        return cost
