"""Direct-send baseline: the trivial strongly confidential protocol.

The source sends each rumor straight to every destination in the
injection round.  No process outside ``D`` ever sees anything (strong
confidentiality), QoD holds with probability 1 (the network is reliable
and both endpoints being continuously alive includes the injection round),
and the cost is exactly ``|D|`` messages per rumor — which, under the
Theorem-1 workload, is the ``Omega(n x)`` total the lower bound says no
strongly confidential protocol can beat by more than constant-factor
merging.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.core.confidential_gossip import DeliverCallback
from repro.gossip.rumor import Rumor, RumorId
from repro.sim.messages import Message, ServiceTags
from repro.sim.process import NodeBehavior

__all__ = ["DirectSendNode", "direct_factory"]


class DirectSendNode(NodeBehavior):
    """Source-to-destination unicast of full rumors."""

    def __init__(
        self,
        pid: int,
        n: int,
        deliver_callback: Optional[DeliverCallback] = None,
    ):
        super().__init__(pid, n)
        self.deliver_callback = deliver_callback
        self._outbox: List[Message] = []
        self._delivered: Dict[RumorId, bytes] = {}
        self.rumors_sent = 0

    def on_inject(self, round_no: int, rumor: Rumor) -> None:
        if self.pid in rumor.dest:
            self._deliver(round_no, rumor, "local")
        for dst in sorted(rumor.dest):
            if dst == self.pid:
                continue
            self._outbox.append(
                Message(
                    src=self.pid,
                    dst=dst,
                    service=ServiceTags.BASELINE,
                    payload=rumor,
                    size=1,
                    channel="direct",
                )
            )
        self.rumors_sent += 1

    def send_phase(self, round_no: int) -> List[Message]:
        outbox, self._outbox = self._outbox, []
        return outbox

    def receive_phase(self, round_no: int, inbox: List[Message]) -> None:
        for message in inbox:
            rumor = message.payload
            if isinstance(rumor, Rumor):
                self._deliver(round_no, rumor, "direct")

    def delivered_rumors(self) -> Dict[object, bytes]:
        return dict(self._delivered)

    def _deliver(self, round_no: int, rumor: Rumor, path: str) -> None:
        if rumor.rid in self._delivered:
            return
        self._delivered[rumor.rid] = rumor.data
        if self.deliver_callback is not None:
            self.deliver_callback(self.pid, round_no, rumor.rid, rumor.data, path)


def direct_factory(
    n: int, deliver_callback: Optional[DeliverCallback] = None
) -> Callable[[int], DirectSendNode]:
    def factory(pid: int) -> DirectSendNode:
        return DirectSendNode(pid, n, deliver_callback)

    return factory
