"""Strongly confidential gossip: collaboration restricted to ``rho.D``.

This is the class of protocols Theorem 1 bounds from below: no message
causally dependent on a rumor may reach a process outside the rumor's
destination set, so only destination-set members (plus the source) may
relay it.  The implementation gossips each rumor epidemically *inside*
``D + {source}`` and, crucially, exploits the only merging the definition
allows: a single message from ``p`` to ``q`` batches every rumor whose
destination set contains both ``p`` and ``q``.

The Theorem-1 workload makes such overlaps vanishingly rare, so measured
total messages track ``sum |D| = Theta(n x)`` — the lower bound's shape —
while CONGOS (weak confidentiality, all-process collaboration) beats it on
peak per-round traffic for the same deliveries.

QoD is kept probability-1 the same way CONGOS keeps it: the source
direct-sends at the deadline if it has not seen its rumor saturate (here:
a deterministic flush at expiry, since there is no confirmation channel).
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.confidential_gossip import DeliverCallback
from repro.gossip.epidemic import choose_push_targets, default_fanout
from repro.gossip.rumor import Rumor, RumorId
from repro.sim.messages import Message, ServiceTags
from repro.sim.process import NodeBehavior
from repro.sim.rng import SeedSequence

__all__ = ["StronglyConfidentialNode", "strongly_confidential_factory"]


class StronglyConfidentialNode(NodeBehavior):
    """Epidemic relay confined to each rumor's destination set."""

    def __init__(
        self,
        pid: int,
        n: int,
        rng: random.Random,
        fanout_scale: float = 1.0,
        deliver_callback: Optional[DeliverCallback] = None,
    ):
        super().__init__(pid, n)
        self.rng = rng
        self.fanout_scale = fanout_scale
        self.deliver_callback = deliver_callback
        # rid -> (rumor, expiry round, am_i_source)
        self._carrying: Dict[RumorId, Tuple[Rumor, int, bool]] = {}
        self._delivered: Dict[RumorId, bytes] = {}

    # ------------------------------------------------------------------

    def on_inject(self, round_no: int, rumor: Rumor) -> None:
        self._carrying[rumor.rid] = (rumor, round_no + rumor.deadline, True)
        if self.pid in rumor.dest:
            self._deliver(round_no, rumor, "local")

    def send_phase(self, round_no: int) -> List[Message]:
        self._drop_expired(round_no)
        if not self._carrying:
            return []
        # Pick targets per rumor, then merge by target: one message carries
        # every rumor allowed to travel on that (src, dst) link.
        per_target: Dict[int, List[Rumor]] = {}
        for rumor, expiry, am_source in self._carrying.values():
            allowed = [q for q in rumor.dest if q != self.pid]
            if not allowed:
                continue
            if am_source and expiry == round_no:
                # Deterministic deadline flush (probability-1 QoD).
                targets = allowed
            else:
                fanout = default_fanout(len(allowed) + 1, self.fanout_scale)
                targets = choose_push_targets(
                    self.rng, allowed, self.pid, max(1, fanout)
                )
            for target in targets:
                per_target.setdefault(target, []).append(rumor)
        messages: List[Message] = []
        for target in sorted(per_target):
            rumors = per_target[target]
            for rumor in rumors:
                if target not in rumor.dest:
                    raise AssertionError(
                        "strong confidentiality would be violated"
                    )
            messages.append(
                Message(
                    src=self.pid,
                    dst=target,
                    service=ServiceTags.BASELINE,
                    payload=tuple(rumors),
                    size=len(rumors),
                    channel="sc-gossip",
                )
            )
        return messages

    def receive_phase(self, round_no: int, inbox: List[Message]) -> None:
        for message in inbox:
            for rumor in message.payload:
                if rumor.rid in self._delivered:
                    continue
                expiry = rumor.injected_at + rumor.deadline
                if round_no <= expiry and rumor.rid not in self._carrying:
                    self._carrying[rumor.rid] = (rumor, expiry, False)
                self._deliver(round_no, rumor, "gossip")

    def delivered_rumors(self) -> Dict[object, bytes]:
        return dict(self._delivered)

    # ------------------------------------------------------------------

    def _deliver(self, round_no: int, rumor: Rumor, path: str) -> None:
        if self.pid not in rumor.dest or rumor.rid in self._delivered:
            return
        self._delivered[rumor.rid] = rumor.data
        if self.deliver_callback is not None:
            self.deliver_callback(self.pid, round_no, rumor.rid, rumor.data, path)

    def _drop_expired(self, round_no: int) -> None:
        dead = [
            rid for rid, (_, expiry, _) in self._carrying.items() if expiry < round_no
        ]
        for rid in dead:
            del self._carrying[rid]


def strongly_confidential_factory(
    n: int,
    seed: int = 0,
    fanout_scale: float = 1.0,
    deliver_callback: Optional[DeliverCallback] = None,
) -> Callable[[int], StronglyConfidentialNode]:
    seeds = SeedSequence(seed).child("sc-gossip")

    def factory(pid: int) -> StronglyConfidentialNode:
        return StronglyConfidentialNode(
            pid,
            n,
            rng=seeds.rng(pid),
            fanout_scale=fanout_scale,
            deliver_callback=deliver_callback,
        )

    return factory
