"""Plain (non-confidential) continuous gossip.

The efficiency reference point of the paper's introduction: everyone
relays everything, deliveries are fast and cheap per rumor — and "all
confidentiality is lost: every device in the system may learn every piece
of information".  Running the confidentiality auditor over this baseline
is expected to report plaintext violations; that is the point.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.core.confidential_gossip import DeliverCallback
from repro.gossip.continuous import ContinuousGossip
from repro.gossip.rumor import GossipItem, Rumor, RumorId
from repro.sim.messages import Message, ServiceTags
from repro.sim.process import NodeBehavior
from repro.sim.rng import SeedSequence

__all__ = ["PlainGossipNode", "plain_gossip_factory"]


class PlainGossipNode(NodeBehavior):
    """One unfiltered continuous-gossip instance carrying whole rumors."""

    def __init__(
        self,
        pid: int,
        n: int,
        seeds: SeedSequence,
        fanout_scale: float = 2.0,
        reliable: bool = True,
        deliver_callback: Optional[DeliverCallback] = None,
    ):
        super().__init__(pid, n)
        self.seeds = seeds
        self.fanout_scale = fanout_scale
        self.reliable = reliable
        self.deliver_callback = deliver_callback
        self._delivered: Dict[RumorId, bytes] = {}
        self._gossip: ContinuousGossip

    def on_start(self, round_no: int) -> None:
        self._gossip = ContinuousGossip(
            pid=self.pid,
            n=self.n,
            channel="plain",
            scope=range(self.n),
            rng=self.seeds.child(self.pid, round_no).rng("plain"),
            deliver=self._on_item,
            service=ServiceTags.BASELINE,
            fanout_scale=self.fanout_scale,
            reliable=self.reliable,
        )

    def on_inject(self, round_no: int, rumor: Rumor) -> None:
        if self.pid in rumor.dest:
            self._deliver(round_no, rumor, "local")
        self._gossip.inject(
            round_no,
            rumor,
            deadline=rumor.deadline,
            dest=range(self.n),  # everyone relays: no confidentiality
            uid=("plain", rumor.rid),
        )

    def send_phase(self, round_no: int) -> List[Message]:
        return self._gossip.send_phase(round_no)

    def receive_phase(self, round_no: int, inbox: List[Message]) -> None:
        for message in inbox:
            self._gossip.on_message(round_no, message)
        self._gossip.end_round(round_no)

    def delivered_rumors(self) -> Dict[object, bytes]:
        return dict(self._delivered)

    def _on_item(self, round_no: int, item: GossipItem) -> None:
        rumor = item.payload
        if isinstance(rumor, Rumor):
            self._deliver(round_no, rumor, "gossip")

    def _deliver(self, round_no: int, rumor: Rumor, path: str) -> None:
        # Only destinations report a delivery to the user; but every relay
        # has *seen* the plaintext — which the auditor duly records.
        if self.pid not in rumor.dest or rumor.rid in self._delivered:
            return
        self._delivered[rumor.rid] = rumor.data
        if self.deliver_callback is not None:
            self.deliver_callback(self.pid, round_no, rumor.rid, rumor.data, path)


def plain_gossip_factory(
    n: int,
    seed: int = 0,
    fanout_scale: float = 2.0,
    reliable: bool = True,
    deliver_callback: Optional[DeliverCallback] = None,
) -> Callable[[int], PlainGossipNode]:
    seeds = SeedSequence(seed).child("plain-gossip")

    def factory(pid: int) -> PlainGossipNode:
        return PlainGossipNode(
            pid,
            n,
            seeds=seeds,
            fanout_scale=fanout_scale,
            reliable=reliable,
            deliver_callback=deliver_callback,
        )

    return factory
