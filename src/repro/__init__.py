"""repro — a reproduction of "Confidential Gossip" (ICDCS 2011).

The package implements the CONGOS confidential continuous-gossip protocol
of Georgiou, Gilbert and Kowalski, together with the synchronous
crash/restart simulation substrate it runs on, the adversaries of the
paper's model, baselines, auditors and a benchmark harness for every
formal claim.  See DESIGN.md for the system inventory and EXPERIMENTS.md
for the reproduction results.

Quick start::

    from repro import quick_run

    result = quick_run(n=16, rounds=400, seed=7)
    print(result.qod.summary())
    print(result.confidentiality.summary())

For anything richer — named scenario runs, grid sweeps, lifecycle
traces — import from :mod:`repro.api`, the stable facade.
"""

from repro.core.config import CongosParams
from repro.core.congos import CongosNode, build_partition_set, congos_factory
from repro.gossip.rumor import Rumor, RumorId, make_rumor
from repro.harness.oneshot import confidential_broadcast
from repro.sim.engine import Engine

__version__ = "1.0.0"

__all__ = [
    "CongosNode",
    "CongosParams",
    "Engine",
    "Rumor",
    "RumorId",
    "__version__",
    "build_partition_set",
    "confidential_broadcast",
    "congos_factory",
    "make_rumor",
    "quick_run",
]


def quick_run(n: int = 16, rounds: int = 400, seed: int = 0, **scenario_kwargs):
    """Run a small audited CONGOS simulation (see harness.runner)."""
    from repro.harness.runner import run_congos_scenario
    from repro.harness.scenarios import steady_scenario

    scenario = steady_scenario(n=n, rounds=rounds, seed=seed, **scenario_kwargs)
    return run_congos_scenario(scenario)
