"""The open-workload injection adversary.

:class:`OpenWorkload` composes the pieces: every round it pulls the
offered batch from its :class:`~repro.load.arrivals.ArrivalStream`,
pushes it through the :class:`~repro.load.admission.AdmissionQueue`,
and injects the admitted arrivals within the per-round budget.  All
randomness lives in the stream; admission is deterministic bookkeeping —
so the offered stream is identical at any ``--jobs`` setting and on
both backends, and admission outcomes match wherever the underlying
fault schedule does.

It is injection-only (no ``mid_round`` override), which keeps it legal
on the sharded backend, and it exposes:

* ``load_summary()`` — offered/admitted/shed accounting with queue-depth
  and wait quantiles through :class:`repro.obs.registry.Histogram`;
* ``waits`` — per-rumor queueing delay, which the SLO layer adds to the
  protocol's delivery latency for arrival-to-delivery percentiles;
* ``shed_records`` — the shed arrivals (with their payload bytes), the
  ground truth for the shed-leak audit: a rumor that was never admitted
  must never surface anywhere in the run;
* ``bind_telemetry()`` — optional ``repro.obs`` wiring: counters for
  offered/admitted/shed, a queue-depth gauge, wait/depth histograms and
  leak-safe per-shed events (source and timing only — never payloads or
  destination sets).
"""

from __future__ import annotations

import random
from typing import Dict, List, NamedTuple, Optional

from repro.adversary.injection import InjectionWorkload
from repro.gossip.rumor import RumorId
from repro.load.admission import AdmissionPolicy, AdmissionQueue
from repro.load.arrivals import ArrivalSpec, ArrivalStream
from repro.obs.registry import Histogram
from repro.sim.engine import AdversaryView
from repro.sim.events import RoundDecision

__all__ = ["OpenWorkload", "ShedArrival", "SHED_REASONS"]

SHED_REASONS = ("queue_full", "aged_out")


class ShedArrival(NamedTuple):
    """One arrival admission control turned away."""

    shed_round: int
    arrival_round: int
    reason: str
    src: int
    data: bytes


class OpenWorkload(InjectionWorkload):
    """Open arrival stream behind a budgeted admission queue."""

    def __init__(
        self,
        n: int,
        rng: random.Random,
        spec: ArrivalSpec,
        policy: AdmissionPolicy,
        budget: int,
        start_round: int = 0,
        stop_round: Optional[int] = None,
        seq_start: int = 0,
    ):
        super().__init__(rng, spec.payload_size, seq_start)
        if budget < 1:
            raise ValueError("per-round injection budget must be >= 1")
        self.n = n
        self.spec = spec
        self.policy = policy
        self.budget = budget
        self.stream = ArrivalStream(spec, n, rng, start_round, stop_round)
        self.queue = AdmissionQueue(policy.queue_cap)
        self.offered = 0
        self.admitted = 0
        self.shed_counts: Dict[str, int] = {r: 0 for r in SHED_REASONS}
        self.shed_records: List[ShedArrival] = []
        self.wait_hist = Histogram()  # queueing delay of admitted arrivals
        self.depth_hist = Histogram()  # queue depth at end of each round
        self.arrival_rounds: Dict[RumorId, int] = {}
        self.waits: Dict[RumorId, int] = {}
        self._telemetry = None

    # -- observability ---------------------------------------------------

    def bind_telemetry(self, telemetry) -> None:
        """Mirror admission accounting into a live telemetry object."""
        if telemetry is not None and telemetry.enabled:
            self._telemetry = telemetry

    def _shed(self, round_no: int, entry_round: int, src: int, data: bytes, reason: str) -> None:
        self.shed_counts[reason] += 1
        self.shed_records.append(
            ShedArrival(round_no, entry_round, reason, src, data)
        )
        telemetry = self._telemetry
        if telemetry is not None:
            # Leak-safe: source pid and timing only — never the payload
            # bytes or the destination set of a rumor we refused to carry.
            telemetry.metrics.counter("load.shed", reason=reason).inc()
            telemetry.emit(
                "load_shed",
                round_no,
                src=src,
                reason=reason,
                waited=round_no - entry_round,
            )

    # -- adversary hook --------------------------------------------------

    def round_start(self, view: AdversaryView) -> RoundDecision:
        decision = RoundDecision()
        round_no = view.round
        batch = self.stream.arrivals(round_no)
        for arrival in batch:
            self.offered += 1
            if not self.queue.offer(round_no, arrival):
                self._shed(
                    round_no, round_no, arrival.src, arrival.data, "queue_full"
                )
        for queued in self.queue.expire(round_no, self.policy.max_wait):
            self._shed(
                round_no,
                queued.enqueued_round,
                queued.arrival.src,
                queued.arrival.data,
                "aged_out",
            )
        used_sources: set = set()
        for queued in self.queue.take(
            round_no, self.budget, view.is_alive, used_sources
        ):
            arrival = queued.arrival
            rumor = self.make_rumor(
                arrival.src,
                round_no,
                arrival.deadline,
                arrival.dest,
                arrival.data,
            )
            decision.injections.append((arrival.src, rumor))
            wait = queued.waited(round_no)
            self.admitted += 1
            self.wait_hist.observe(wait)
            self.arrival_rounds[rumor.rid] = queued.enqueued_round
            self.waits[rumor.rid] = wait
        depth = len(self.queue)
        self.depth_hist.observe(depth)
        telemetry = self._telemetry
        if telemetry is not None:
            metrics = telemetry.metrics
            if batch:
                metrics.counter("load.offered").inc(len(batch))
            if decision.injections:
                metrics.counter("load.admitted").inc(len(decision.injections))
            metrics.gauge("load.queue_depth").set(depth)
            metrics.histogram("load.queue_depth_rounds").observe(depth)
        return decision

    # -- summaries -------------------------------------------------------

    @property
    def shed_total(self) -> int:
        return sum(self.shed_counts.values())

    def load_summary(self) -> Dict[str, object]:
        """JSON-safe admission accounting (the ``load`` summary core).

        The SLO layer (:mod:`repro.load.slo`) extends this with delivery
        and arrival-to-delivery latency quantiles, which need the QoD
        report and therefore live outside the adversary.
        """
        offered = self.offered
        return {
            "process": self.spec.process,
            "rate": self.spec.rate,
            "budget": self.budget,
            "queue_cap": self.policy.queue_cap,
            "max_wait": self.policy.max_wait,
            "offered": offered,
            "admitted": self.admitted,
            "shed": dict(self.shed_counts),
            "shed_total": self.shed_total,
            "shed_rate": (
                round(self.shed_total / offered, 6) if offered else 0.0
            ),
            "queue_final_depth": len(self.queue),
            "queue_depth": _hist_summary(self.depth_hist),
            "wait_rounds": _hist_summary(self.wait_hist),
        }


def _hist_summary(hist: Histogram) -> Dict[str, object]:
    full = hist.as_dict()
    return {
        key: full[key] for key in ("count", "mean", "max", "p50", "p99", "p999")
    }
