"""Deterministic open-workload arrival processes.

An :class:`ArrivalSpec` describes *offered* traffic — how many rumors
want in per round, to whom, with what deadlines — as a plain,
JSON-representable dataclass, so open scenarios ride
:class:`repro.exec.tasks.RunSpec` across process boundaries unchanged.
An :class:`ArrivalStream` materializes the spec into per-round
:class:`Arrival` batches.

Determinism contract (the load-subsystem analogue of the chaos plane's
"same seed => same schedule"): a stream draws *only* from its own rng —
derived from ``(scenario seed, "workload", scenario name)`` by the
harness — and the round number.  It never looks at engine state (alive
sets, queue occupancy), so the offered stream is bit-identical at any
``--jobs`` setting and on both the inproc and sharded backends; only
*admission* (a pure function of the stream and the policy) reacts to
the simulation.

Three processes are supported:

* ``"poisson"`` — stationary Poisson arrivals at ``rate`` per round;
* ``"bursty"`` — an on/off (interrupted Poisson) process: ``burst_on``
  rounds at ``rate``, then ``burst_off`` rounds at ``off_rate``;
* ``"diurnal"`` — a raised-cosine day curve with period ``period``
  rounds, peaking at ``rate`` mid-period and calm at the edges.

Destination sets are uniform by default; ``zipf_groups > 0`` partitions
the pid space into that many contiguous blocks and picks the block of
each destination set Zipf-distributed (exponent ``zipf_s``), modelling
hotspot destination skew.  Deadlines come from a weighted mix.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, fields
from typing import Dict, FrozenSet, List, Mapping, Optional, Tuple

__all__ = [
    "Arrival",
    "ArrivalSpec",
    "ArrivalStream",
    "PROCESSES",
    "poisson_sample",
]

PROCESSES = ("poisson", "bursty", "diurnal")

# Knuth's product-of-uniforms sampler underflows for large lambda; split
# the mean into chunks (Poisson(a) + Poisson(b) ~ Poisson(a+b)) so the
# per-chunk exp(-lambda) stays comfortably representable.
_POISSON_CHUNK = 12.0


def _poisson_knuth(rng: random.Random, lam: float) -> int:
    threshold = math.exp(-lam)
    count = 0
    product = 1.0
    while True:
        product *= rng.random()
        if product <= threshold:
            return count
        count += 1


def poisson_sample(rng: random.Random, lam: float) -> int:
    """Draw ``Poisson(lam)`` from ``rng`` (stdlib-only, exact for any lam)."""
    if lam < 0:
        raise ValueError("poisson mean must be non-negative")
    total = 0
    while lam > _POISSON_CHUNK:
        total += _poisson_knuth(rng, _POISSON_CHUNK)
        lam -= _POISSON_CHUNK
    if lam > 0:
        total += _poisson_knuth(rng, lam)
    return total


@dataclass(frozen=True)
class Arrival:
    """One rumor that *wants* to be injected (pre-admission).

    The payload is drawn at arrival time — the client's secret exists
    before admission control sees it — which is what makes the shed-leak
    audit non-vacuous: a shed arrival has concrete bytes that must never
    surface anywhere in the run.
    """

    arrival_round: int
    src: int
    dest: FrozenSet[int]
    deadline: int
    data: bytes


@dataclass(frozen=True)
class ArrivalSpec:
    """A JSON-representable description of an open arrival process."""

    process: str = "poisson"
    rate: float = 2.0  # peak mean arrivals per round
    burst_on: int = 16  # bursty: rounds at ``rate`` ...
    burst_off: int = 48  # ... then rounds at ``off_rate``
    off_rate: float = 0.0
    period: int = 96  # diurnal: day length in rounds
    dest_size: int = 3
    zipf_groups: int = 0  # 0 = uniform destinations
    zipf_s: float = 1.1
    deadlines: Tuple[int, ...] = (64,)
    deadline_weights: Optional[Tuple[float, ...]] = None
    payload_size: int = 16

    def __post_init__(self) -> None:
        if self.process not in PROCESSES:
            raise ValueError(
                "process must be one of {}, got {!r}".format(
                    "/".join(PROCESSES), self.process
                )
            )
        if self.rate < 0:
            raise ValueError("rate must be non-negative")
        if self.burst_on < 1 or self.burst_off < 0:
            raise ValueError("burst_on must be >= 1, burst_off >= 0")
        if self.off_rate < 0:
            raise ValueError("off_rate must be non-negative")
        if self.period < 2:
            raise ValueError("diurnal period must be >= 2")
        if self.dest_size < 1:
            raise ValueError("dest_size must be >= 1")
        if self.zipf_groups < 0:
            raise ValueError("zipf_groups must be non-negative")
        if self.zipf_s <= 0:
            raise ValueError("zipf_s must be positive")
        # Tolerate JSON round-trips (lists in, tuples out).
        object.__setattr__(self, "deadlines", tuple(self.deadlines))
        if not self.deadlines or any(d < 1 for d in self.deadlines):
            raise ValueError("deadlines must be a non-empty tuple of >= 1")
        if self.deadline_weights is not None:
            object.__setattr__(
                self, "deadline_weights", tuple(self.deadline_weights)
            )
            if len(self.deadline_weights) != len(self.deadlines):
                raise ValueError(
                    "deadline_weights must match deadlines in length"
                )
            if any(w < 0 for w in self.deadline_weights) or not any(
                self.deadline_weights
            ):
                raise ValueError(
                    "deadline_weights must be non-negative with a positive sum"
                )
        if self.payload_size < 1:
            raise ValueError("payload_size must be >= 1")

    @property
    def max_deadline(self) -> int:
        return max(self.deadlines)

    @property
    def min_deadline(self) -> int:
        return min(self.deadlines)

    def mean_rate(self, round_no: int, start_round: int = 0) -> float:
        """Expected arrivals in ``round_no`` (the process's rate curve)."""
        t = round_no - start_round
        if self.process == "poisson":
            return self.rate
        if self.process == "bursty":
            phase = t % (self.burst_on + self.burst_off)
            return self.rate if phase < self.burst_on else self.off_rate
        # diurnal: raised cosine, 0 at the period edges, ``rate`` mid-day
        return self.rate * (1.0 - math.cos(2.0 * math.pi * t / self.period)) / 2.0

    # -- JSON round-trip -------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            f.name: getattr(self, f.name) for f in fields(self)
        }
        out["deadlines"] = list(self.deadlines)
        if self.deadline_weights is not None:
            out["deadline_weights"] = list(self.deadline_weights)
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ArrivalSpec":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                "unknown ArrivalSpec fields: {}".format(sorted(unknown))
            )
        return cls(**dict(data))  # type: ignore[arg-type]


class ArrivalStream:
    """Materializes an :class:`ArrivalSpec` into per-round batches.

    Per arrival the draw order is fixed — count, then for each arrival
    src / destination set / deadline / payload — so two streams with the
    same (spec, n, seed) are byte-identical however they are consumed.
    """

    def __init__(
        self,
        spec: ArrivalSpec,
        n: int,
        rng: random.Random,
        start_round: int = 0,
        stop_round: Optional[int] = None,
    ):
        if n < 2:
            raise ValueError("arrival streams need at least two processes")
        if spec.zipf_groups > n:
            raise ValueError("zipf_groups cannot exceed n")
        self.spec = spec
        self.n = n
        self.rng = rng
        self.start_round = start_round
        self.stop_round = stop_round
        self._zipf_cumulative = self._zipf_table(spec.zipf_groups, spec.zipf_s)

    @staticmethod
    def _zipf_table(groups: int, s: float) -> Optional[List[float]]:
        if not groups:
            return None
        weights = [1.0 / ((g + 1) ** s) for g in range(groups)]
        total = sum(weights)
        cumulative: List[float] = []
        acc = 0.0
        for w in weights:
            acc += w / total
            cumulative.append(acc)
        cumulative[-1] = 1.0  # guard against float drift
        return cumulative

    def _hot_block(self) -> range:
        """Pick a pid block Zipf-distributed (block 0 is the hotspot)."""
        u = self.rng.random()
        cumulative = self._zipf_cumulative
        assert cumulative is not None
        group = 0
        for group, edge in enumerate(cumulative):
            if u <= edge:
                break
        groups = len(cumulative)
        lo = group * self.n // groups
        hi = (group + 1) * self.n // groups
        return range(lo, hi)

    def _destinations(self, src: int) -> FrozenSet[int]:
        spec = self.spec
        if self._zipf_cumulative is not None:
            pool = [p for p in self._hot_block() if p != src]
            if not pool:  # degenerate block (size <= 1 holding src)
                pool = [p for p in range(self.n) if p != src]
        else:
            pool = [p for p in range(self.n) if p != src]
        size = min(spec.dest_size, len(pool))
        return frozenset(self.rng.sample(pool, size))

    def _deadline(self) -> int:
        spec = self.spec
        if spec.deadline_weights is None:
            return self.rng.choice(spec.deadlines)
        return self.rng.choices(
            spec.deadlines, weights=spec.deadline_weights, k=1
        )[0]

    def arrivals(self, round_no: int) -> List[Arrival]:
        """The offered batch for one round (empty outside the window)."""
        if round_no < self.start_round:
            return []
        if self.stop_round is not None and round_no >= self.stop_round:
            return []
        lam = self.spec.mean_rate(round_no, self.start_round)
        count = poisson_sample(self.rng, lam)
        batch: List[Arrival] = []
        for _ in range(count):
            src = self.rng.randrange(self.n)
            dest = self._destinations(src)
            deadline = self._deadline()
            data = self.rng.randbytes(self.spec.payload_size)
            batch.append(
                Arrival(
                    arrival_round=round_no,
                    src=src,
                    dest=dest,
                    deadline=deadline,
                    data=data,
                )
            )
        return batch
