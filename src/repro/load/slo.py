"""Service-level summaries for open-workload runs.

A closed-workload run is judged once, pass/fail (QoD).  A *service* is
judged continuously: what latency did the p99 client see, how much
offered traffic was turned away, how often did the deadline-exact
fallback fire.  This module derives those numbers from a finished
:class:`~repro.harness.runner.RunResult` whose workload is an
:class:`~repro.load.workload.OpenWorkload`, reusing the exact-quantile
:class:`repro.obs.registry.Histogram` machinery:

* ``delivery_latency`` — injection-to-delivery rounds of admissible
  pairs (p50/p99/p999), the protocol's own service time;
* ``e2e_latency`` — *arrival*-to-delivery rounds (queueing wait plus
  delivery), what an open-system client actually experiences;
* ``fallback_rate`` — the share of served admissible pairs that needed
  Lemma 4's deadline shoot;
* shed/admit/queue accounting inherited from the workload, plus the
  shed-leak verdict from :func:`repro.audit.confidentiality.shed_rumor_leaks`.

Everything returned is JSON-safe and deterministic (no wall-clock), so
the summary rides :class:`repro.exec.results.RunRecord` through the
result cache and sweep artifacts unchanged.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.audit.confidentiality import shed_rumor_leaks
from repro.obs.registry import Histogram

__all__ = ["slo_summary"]

_QUANTILE_KEYS = ("count", "mean", "max", "p50", "p99", "p999")


def _latency_summary(hist: Histogram) -> Dict[str, object]:
    full = hist.as_dict()
    return {key: full[key] for key in _QUANTILE_KEYS}


def slo_summary(result) -> Optional[Dict[str, object]]:
    """The ``load`` section of an open run's summary (or ``None``).

    ``None`` when the run's workload is not an open workload — closed
    scenarios keep their summaries (and golden digests) byte-identical.
    """
    workload = result.workload
    summarize = getattr(workload, "load_summary", None)
    if summarize is None:
        return None
    out: Dict[str, object] = summarize()

    delivery_hist = Histogram()
    e2e_hist = Histogram()
    waits = getattr(workload, "waits", {})
    for outcome in result.qod.outcomes:
        if not outcome.admissible or outcome.latency is None:
            continue
        delivery_hist.observe(outcome.latency)
        wait = waits.get(outcome.rid)
        if wait is not None:
            e2e_hist.observe(outcome.latency + wait)
    out["delivery_latency"] = _latency_summary(delivery_hist)
    out["e2e_latency"] = _latency_summary(e2e_hist)

    paths = result.qod.path_counts(admissible_only=True)
    served = sum(paths.values())
    out["fallback_rate"] = (
        round(paths.get("shoot", 0) / served, 6) if served else 0.0
    )
    out["qod_satisfied"] = result.qod.satisfied

    rounds = result.scenario.rounds
    out["throughput"] = {
        "rounds": rounds,
        "offered_per_round": round(out["offered"] / rounds, 6),
        "admitted_per_round": round(out["admitted"] / rounds, 6),
    }

    leaks = shed_rumor_leaks(result)
    out["shed_leaks"] = len(leaks)
    out["shed_leak_free"] = not leaks
    return out
