"""repro.load — open-workload streaming: arrivals, admission, SLOs.

Everything before this package was closed-workload: a fixed rumor set
injected in a window and judged once.  ``repro.load`` turns the
reproduction into a load-testable service model:

* :mod:`repro.load.arrivals` — deterministic, seed-scoped arrival
  processes (Poisson / bursty / diurnal) with hotspot destination-set
  skew (Zipf over pid blocks) and configurable deadline mixes;
* :mod:`repro.load.admission` — queue-based load leveling: a bounded
  injection queue in front of the engine's per-round injection budget,
  with aging and wait-cap shedding;
* :mod:`repro.load.workload` — :class:`OpenWorkload`, the injection
  adversary that drives the stream through the queue into the engine;
* :mod:`repro.load.slo` — service-level summaries (delivery-latency
  p50/p99/p999, shed/fallback rates, throughput) built on
  :class:`repro.obs.registry.Histogram`;
* :mod:`repro.load.soak` — the E20 saturation-knee harness behind the
  ``load-soak`` CLI subcommand.

Arrival streams draw only from their own derived rng and the round
number — never from engine state — so a given ``(seed, scenario name)``
produces the identical stream at any ``--jobs`` setting and on both
the inproc and sharded backends.
"""

from repro.load.admission import AdmissionPolicy, AdmissionQueue
from repro.load.arrivals import Arrival, ArrivalSpec, ArrivalStream, poisson_sample
from repro.load.workload import OpenWorkload, ShedArrival

__all__ = [
    "AdmissionPolicy",
    "AdmissionQueue",
    "Arrival",
    "ArrivalSpec",
    "ArrivalStream",
    "OpenWorkload",
    "ShedArrival",
    "poisson_sample",
]
