"""Admission control: queue-based load leveling for open workloads.

The engine accepts at most one rumor per process per round, and the
protocol's message complexity grows with the number of *concurrent*
rumors — so an open workload cannot simply inject whatever arrives.
:class:`AdmissionQueue` sits between the arrival stream and the engine:

* arrivals enter a bounded FIFO queue (capacity ``queue_cap``); when it
  is full they are **shed** immediately (``"queue_full"``);
* each round, up to ``per_round`` queued arrivals are admitted, oldest
  first, skipping (but keeping queued) arrivals whose source is crashed
  or already injected this round;
* queued arrivals that have waited longer than ``max_wait`` rounds are
  shed (``"aged_out"``) — a rumor that has already burned a deadline's
  worth of queueing is not worth injecting.

The queue itself is pure bookkeeping: it draws no randomness and its
decisions are a deterministic function of the offered stream, the
policy, and the alive set — so open runs stay jobs- and
backend-invariant wherever the underlying simulation is.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, fields
from typing import Callable, Deque, Dict, List, Mapping, Optional, Set

from repro.load.arrivals import Arrival

__all__ = ["AdmissionPolicy", "AdmissionQueue", "QueuedArrival"]


@dataclass(frozen=True)
class AdmissionPolicy:
    """JSON-representable admission-control knobs.

    ``per_round=None`` means "auto": the scenario builder resolves it to
    :meth:`repro.core.config.CongosParams.injection_budget` for the run's
    ``n``, keeping the budget consistent with what the protocol stack can
    absorb at a sustainable message complexity.
    """

    per_round: Optional[int] = None
    queue_cap: int = 256
    max_wait: Optional[int] = 32

    def __post_init__(self) -> None:
        if self.per_round is not None and self.per_round < 1:
            raise ValueError("per_round must be >= 1 (or None for auto)")
        if self.queue_cap < 1:
            raise ValueError("queue_cap must be >= 1")
        if self.max_wait is not None and self.max_wait < 1:
            raise ValueError("max_wait must be >= 1 (or None for no cap)")

    def to_dict(self) -> Dict[str, object]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "AdmissionPolicy":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                "unknown AdmissionPolicy fields: {}".format(sorted(unknown))
            )
        return cls(**dict(data))  # type: ignore[arg-type]


@dataclass(frozen=True)
class QueuedArrival:
    """An arrival parked in the admission queue."""

    arrival: Arrival
    enqueued_round: int

    def waited(self, round_no: int) -> int:
        return round_no - self.enqueued_round


class AdmissionQueue:
    """Bounded FIFO between the arrival stream and the injection budget."""

    def __init__(self, queue_cap: int):
        if queue_cap < 1:
            raise ValueError("queue_cap must be >= 1")
        self.queue_cap = queue_cap
        self._entries: Deque[QueuedArrival] = deque()

    def __len__(self) -> int:
        return len(self._entries)

    def offer(self, round_no: int, arrival: Arrival) -> bool:
        """Enqueue one arrival; ``False`` means shed (queue full)."""
        if len(self._entries) >= self.queue_cap:
            return False
        self._entries.append(QueuedArrival(arrival, round_no))
        return True

    def expire(
        self, round_no: int, max_wait: Optional[int]
    ) -> List[QueuedArrival]:
        """Remove and return entries that waited longer than ``max_wait``."""
        if max_wait is None:
            return []
        expired = [
            e for e in self._entries if e.waited(round_no) > max_wait
        ]
        if expired:
            dead = set(id(e) for e in expired)
            self._entries = deque(
                e for e in self._entries if id(e) not in dead
            )
        return expired

    def take(
        self,
        round_no: int,
        budget: int,
        is_alive: Callable[[int], bool],
        used_sources: Set[int],
    ) -> List[QueuedArrival]:
        """Dequeue up to ``budget`` injectable entries, oldest first.

        Entries whose source is crashed (the model forbids injecting at
        crashed processes) or already injecting this round (the engine
        enforces one rumor per process per round) are skipped in place —
        they stay queued, aging, and get another chance next round.
        ``used_sources`` is updated with the admitted sources.
        """
        admitted: List[QueuedArrival] = []
        if budget < 1:
            return admitted
        kept: Deque[QueuedArrival] = deque()
        while self._entries:
            entry = self._entries.popleft()
            src = entry.arrival.src
            if (
                len(admitted) < budget
                and src not in used_sources
                and is_alive(src)
            ):
                admitted.append(entry)
                used_sources.add(src)
            else:
                kept.append(entry)
        self._entries = kept
        return admitted
