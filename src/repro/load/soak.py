"""E20: the open-workload saturation matrix.

Sweeps arrival rate x n x preset (x arrival process) over the ``open``
scenario builder on the exec pool and reduces the records into the
``BENCH_e20_open_workload.json`` sidecar: per-cell service metrics
(delivery-latency p50/p99/p999, arrival-to-delivery worst-seed
quantiles, shed/fallback rates, admitted throughput) plus, per
``(n, process, preset)`` series, the **saturation knee** — the highest
swept arrival rate the admission budget sustains with zero shedding —
and the sustained-throughput ceiling at that knee.

The payload follows the E15/E16/E19 split: everything here is
deterministic (cacheable, jobs-invariant); wall-clock throughput
(rumors/sec) is attached from the runs' exec-pool profiles and lives
next to the ``profile`` section's caveat — real time, not simulated
rounds, so it varies machine to machine.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.obs.registry import Histogram

__all__ = [
    "BENCH_NAME",
    "load_cells",
    "run_load_soak",
    "load_payload",
]

BENCH_NAME = "e20_open_workload"

_SERIES_AXES = ("n", "process", "preset", "engine")


def load_cells(
    rates: Sequence[float],
    ns: Sequence[int],
    processes: Sequence[str] = ("poisson",),
    presets: Sequence[str] = ("default",),
    engines: Sequence[str] = ("object",),
) -> List[Dict[str, object]]:
    """The E20 matrix: arrival rate x n x preset x process (x engine).

    ``engine`` is a first-class series axis: ``"array"`` cells run the
    vectorized :mod:`repro.fastcore` kernel (needs the ``repro[fast]``
    extra), so the knee hunt scales to system sizes the object engine
    cannot sweep.  The admission layer is engine-independent — matching
    knees across engines is itself a statistical-parity check.
    """
    from repro.analysis.sweeps import grid

    return grid(
        process=[str(p) for p in processes],
        rate=[float(r) for r in rates],
        n=[int(n) for n in ns],
        preset=[str(p) for p in presets],
        engine=[str(e) for e in engines],
    )


def run_load_soak(
    cells,
    seeds: Sequence[int] = (0, 1),
    jobs: int = 1,
    cache=None,
    resume: bool = True,
    timeout: Optional[float] = None,
    retries: int = 1,
    progress=None,
    **fixed: object,
):
    """Sweep the ``open`` builder over the matrix on the exec pool."""
    from repro.analysis.sweeps import sweep_congos

    return sweep_congos(
        "open",
        cells,
        seeds=seeds,
        jobs=jobs,
        cache=cache,
        resume=resume,
        timeout=timeout,
        retries=retries,
        progress=progress,
        **fixed,
    )


def _pooled_latency(runs) -> Dict[str, object]:
    """Exact pooled delivery-latency quantiles across a cell's seeds."""
    hist = Histogram()
    for run in runs:
        for latency in run.latencies:
            hist.observe(latency)
    full = hist.as_dict()
    return {
        key: full[key] for key in ("count", "mean", "max", "p50", "p99", "p999")
    }


def _worst_seed_latency(runs, section: str) -> Dict[str, object]:
    """Per-quantile max across seeds (raw e2e samples stay in-worker)."""
    out: Dict[str, object] = {}
    for key in ("count", "max", "p50", "p99", "p999"):
        values = [
            run.load.get(section, {}).get(key)
            for run in runs
            if run.load.get(section, {}).get(key) is not None
        ]
        out[key] = max(values) if values else None
    return out


def _cell_entry(cell) -> Dict[str, object]:
    runs = cell.runs
    offered = sum(run.load.get("offered", 0) for run in runs)
    admitted = sum(run.load.get("admitted", 0) for run in runs)
    shed = sum(run.load.get("shed_total", 0) for run in runs)
    admissible = sum(run.admissible_pairs for run in runs)
    missed = sum(run.missed for run in runs)
    rounds = runs[0].rounds if runs else 0
    wall = sum(run.wall_time for run in runs)
    return {
        "cell": dict(cell.cell),
        "seeds": cell.seeds,
        "budget": runs[0].load.get("budget") if runs else None,
        "offered": offered,
        "admitted": admitted,
        "shed": shed,
        "shed_rate": round(shed / offered, 6) if offered else 0.0,
        "admitted_per_round": (
            round(admitted / (len(runs) * rounds), 6) if runs and rounds else 0.0
        ),
        "queue_depth_max": max(
            (run.load.get("queue_depth", {}).get("max", 0) or 0 for run in runs),
            default=0,
        ),
        "wait_p99_max": max(
            (run.load.get("wait_rounds", {}).get("p99", 0) or 0 for run in runs),
            default=0,
        ),
        "delivery_latency": _pooled_latency(runs),
        "e2e_latency_worst_seed": _worst_seed_latency(runs, "e2e_latency"),
        "admissible_pairs": admissible,
        "missed": missed,
        "delivery_rate": (
            round((admissible - missed) / admissible, 6) if admissible else None
        ),
        "fallback_rate": round(cell.fallback_rate(), 6),
        "qod_satisfied": cell.all_satisfied(),
        "clean": cell.all_clean(),
        "shed_leak_free": all(
            run.load.get("shed_leak_free", False) for run in runs
        ),
        # Wall-clock, not simulated time — machine-dependent, see the
        # payload's profile caveat.
        "rumors_per_sec": round(admitted / wall, 2) if wall > 0 else None,
    }


def _knees(entries: List[Dict[str, object]]) -> List[Dict[str, object]]:
    """Locate the saturation knee per (n, process, preset) series.

    The knee is the highest swept rate with zero shedding and QoD intact;
    every rate above it must shed (the queue is bounded), so the knee's
    admitted throughput is the series' sustained ceiling.
    """
    series: Dict[Tuple, List[Dict[str, object]]] = {}
    for entry in entries:
        key = tuple(entry["cell"].get(axis) for axis in _SERIES_AXES)
        series.setdefault(key, []).append(entry)
    knees: List[Dict[str, object]] = []
    for key in sorted(series, key=str):
        ordered = sorted(series[key], key=lambda e: e["cell"]["rate"])
        knee = None
        for entry in ordered:
            if entry["shed_rate"] == 0.0 and entry["qod_satisfied"]:
                knee = entry
        saturated = [e for e in ordered if e["shed_rate"] > 0.0]
        n, process, preset, engine = key
        knees.append(
            {
                "n": n,
                "process": process,
                "preset": preset,
                "engine": engine if engine is not None else "object",
                "rates": [e["cell"]["rate"] for e in ordered],
                "knee_rate": knee["cell"]["rate"] if knee else None,
                "ceiling_admitted_per_round": (
                    knee["admitted_per_round"] if knee else None
                ),
                "rumors_per_sec_at_knee": (
                    knee["rumors_per_sec"] if knee else None
                ),
                "first_saturated_rate": (
                    saturated[0]["cell"]["rate"] if saturated else None
                ),
                "shed_rate_at_peak": ordered[-1]["shed_rate"],
                "e2e_p99_at_knee": (
                    knee["e2e_latency_worst_seed"]["p99"] if knee else None
                ),
            }
        )
    return knees


def load_payload(
    sweep, fixed: Optional[Mapping[str, object]] = None
) -> Dict[str, object]:
    """The deterministic portion of the E20 artifact (plus wall-clock
    rumors/sec, flagged as such)."""
    entries = [_cell_entry(cell) for cell in sweep.cells]
    return {
        "fixed": dict(fixed or {}),
        "cells": entries,
        "knees": _knees(entries),
        "all_clean": sweep.all_clean(),
        "all_shed_leak_free": all(e["shed_leak_free"] for e in entries),
        "total_offered": sum(e["offered"] for e in entries),
        "total_admitted": sum(e["admitted"] for e in entries),
        "total_shed": sum(e["shed"] for e in entries),
    }
