"""Analysis: closed-form paper bounds, power-law fitting, run statistics."""

from repro.analysis.bounds import (
    collusion_lower_bound,
    collusion_upper_bound,
    congos_upper_bound,
    groupgossip_upper_bound,
    strong_confidentiality_lower_bound,
    theorem1_expected_pairs,
)
from repro.analysis.fitting import PowerFit, fit_power_law, fit_with_polylog
from repro.analysis.stats import Summary, all_runs_hold, binomial_upper_p, summarize
from repro.analysis.sweeps import CellResult, SweepResult, grid, sweep_congos

__all__ = [
    "CellResult",
    "PowerFit",
    "Summary",
    "SweepResult",
    "grid",
    "sweep_congos",
    "all_runs_hold",
    "binomial_upper_p",
    "collusion_lower_bound",
    "collusion_upper_bound",
    "congos_upper_bound",
    "fit_power_law",
    "fit_with_polylog",
    "groupgossip_upper_bound",
    "strong_confidentiality_lower_bound",
    "summarize",
    "theorem1_expected_pairs",
]
