"""Parameter sweeps with seed replication, on the exec pool.

The benches each hand-roll one sweep; this module provides the general
machinery for interactive exploration: run a scenario family over a
parameter grid, replicate each cell across seeds, and aggregate the
metrics the paper cares about (per-round peak, totals, QoD verdicts,
fallback rates) into :class:`~repro.analysis.stats.Summary` rows.

Since the exec subsystem landed, a sweep is a list of picklable
:class:`~repro.exec.tasks.RunSpec` tasks: ``jobs>1`` fans them out over
worker processes, ``jobs=1`` (the default) is a strictly serial
fallback, and both produce bit-identical aggregates because every run
derives its randomness from its own spec.  Passing a
:class:`~repro.exec.cache.ResultCache` makes interrupted sweeps
resumable: completed cells are read back from disk instead of re-run.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.analysis.stats import Summary, summarize
from repro.exec.cache import ResultCache
from repro.exec.pool import run_specs
from repro.exec.progress import Progress
from repro.exec.results import RunRecord
from repro.exec.tasks import RunSpec
from repro.harness.scenarios import ScenarioBuilder

__all__ = ["CellResult", "SweepResult", "sweep_congos", "sweep_specs", "grid"]


def grid(**axes: Sequence) -> List[Dict[str, object]]:
    """Cartesian product of named axes as a list of kwargs dicts.

    >>> grid(n=[8, 16], deadline=[64])
    [{'n': 8, 'deadline': 64}, {'n': 16, 'deadline': 64}]
    """
    names = sorted(axes)
    combos = itertools.product(*(axes[name] for name in names))
    return [dict(zip(names, combo)) for combo in combos]


@dataclass
class CellResult:
    """Aggregated metrics of one grid cell across its seed replicates.

    ``runs`` holds the slim :class:`RunRecord` extracts — never engines —
    so a cell looks the same whether its runs happened in this process,
    in a worker pool, or in a previous (cached) invocation.
    """

    cell: Dict[str, object]
    runs: List[RunRecord] = field(default_factory=list)

    @property
    def seeds(self) -> int:
        return len(self.runs)

    def all_satisfied(self) -> bool:
        return all(run.qod_satisfied for run in self.runs)

    def all_clean(self) -> bool:
        return all(run.clean for run in self.runs)

    def peak_summary(self) -> Summary:
        return summarize([run.peak for run in self.runs])

    def total_summary(self) -> Summary:
        return summarize([run.total for run in self.runs])

    def fallback_rate(self) -> float:
        shots = sum(run.fallback_shots() for run in self.runs)
        served = sum(run.served_pairs() for run in self.runs)
        return shots / served if served else 0.0

    def latency_summary(self) -> Optional[Summary]:
        """Latency stats across all replicates, ``None`` if nothing was
        delivered (an empty sample is not a count-1 zero-latency one)."""
        latencies: List[float] = []
        for run in self.runs:
            latencies.extend(run.latencies)
        return summarize(latencies) if latencies else None


@dataclass
class SweepResult:
    """All cells of a sweep."""

    cells: List[CellResult]

    def all_satisfied(self) -> bool:
        return all(cell.all_satisfied() for cell in self.cells)

    def all_clean(self) -> bool:
        return all(cell.all_clean() for cell in self.cells)

    def series(
        self, x_axis: str, metric: Callable[[CellResult], float]
    ) -> List[Tuple[object, float]]:
        """Project the sweep onto ``(cell[x_axis], metric(cell))`` pairs."""
        return [(cell.cell[x_axis], metric(cell)) for cell in self.cells]

    def table_rows(self) -> List[List[object]]:
        rows = []
        for cell in self.cells:
            peak = cell.peak_summary()
            latency = cell.latency_summary()
            rows.append(
                [
                    *[cell.cell[key] for key in sorted(cell.cell)],
                    cell.seeds,
                    round(peak.mean, 1),
                    int(peak.maximum),
                    round(latency.mean, 1) if latency is not None else "-",
                    round(cell.fallback_rate(), 4),
                    cell.all_satisfied(),
                    cell.all_clean(),
                ]
            )
        return rows

    def table_headers(self) -> List[str]:
        if not self.cells:
            return []
        return [
            *sorted(self.cells[0].cell),
            "seeds",
            "peak mean",
            "peak max",
            "latency",
            "fallback",
            "qod",
            "clean",
        ]


def sweep_specs(
    builder: Union[str, ScenarioBuilder],
    cells: Iterable[Mapping[str, object]],
    seeds: Sequence[int] = (0, 1),
    **fixed: object,
) -> List[Tuple[Dict[str, object], List[RunSpec]]]:
    """The picklable task list of a sweep: one RunSpec per cell × seed."""
    out: List[Tuple[Dict[str, object], List[RunSpec]]] = []
    for cell in cells:
        cell_dict = dict(cell)
        specs = [
            RunSpec.make(builder, seed=seed, **fixed, **cell_dict)
            for seed in seeds
        ]
        out.append((cell_dict, specs))
    return out


def sweep_congos(
    builder: Union[str, ScenarioBuilder],
    cells: Iterable[Mapping[str, object]],
    seeds: Sequence[int] = (0, 1),
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    resume: bool = True,
    timeout: Optional[float] = None,
    retries: int = 1,
    progress: Optional[Progress] = None,
    **fixed: object,
) -> SweepResult:
    """Run ``builder(**fixed, **cell, seed=s)`` for every cell and seed.

    ``builder`` is a registry name from
    :data:`repro.harness.scenarios.BUILDERS` or the builder callable
    itself (they all accept ``n``, ``rounds``, ``seed`` plus their own
    knobs).  ``jobs`` controls process-pool fan-out (1 = serial in this
    process); ``cache``/``resume`` skip cells already on disk.
    """
    tasks = sweep_specs(builder, cells, seeds=seeds, **fixed)
    flat = [spec for _, specs in tasks for spec in specs]
    records = run_specs(
        flat,
        jobs=jobs,
        timeout=timeout,
        retries=retries,
        cache=cache,
        resume=resume,
        progress=progress,
    )
    results: List[CellResult] = []
    cursor = 0
    for cell_dict, specs in tasks:
        cell_records = records[cursor : cursor + len(specs)]
        cursor += len(specs)
        results.append(CellResult(cell=cell_dict, runs=list(cell_records)))
    return SweepResult(cells=results)
