"""Parameter sweeps with seed replication.

The benches each hand-roll one sweep; this module provides the general
machinery for interactive exploration: run a scenario family over a
parameter grid, replicate each cell across seeds, and aggregate the
metrics the paper cares about (per-round peak, totals, QoD verdicts,
fallback rates) into :class:`~repro.analysis.stats.Summary` rows.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Sequence, Tuple

from repro.analysis.stats import Summary, summarize
from repro.harness.runner import RunResult, Scenario, run_congos_scenario

__all__ = ["CellResult", "SweepResult", "sweep_congos", "grid"]

ScenarioBuilder = Callable[..., Scenario]


def grid(**axes: Sequence) -> List[Dict[str, object]]:
    """Cartesian product of named axes as a list of kwargs dicts.

    >>> grid(n=[8, 16], deadline=[64])
    [{'n': 8, 'deadline': 64}, {'n': 16, 'deadline': 64}]
    """
    names = sorted(axes)
    combos = itertools.product(*(axes[name] for name in names))
    return [dict(zip(names, combo)) for combo in combos]


@dataclass
class CellResult:
    """Aggregated metrics of one grid cell across its seed replicates."""

    cell: Dict[str, object]
    runs: List[RunResult] = field(default_factory=list)

    @property
    def seeds(self) -> int:
        return len(self.runs)

    def all_satisfied(self) -> bool:
        return all(run.qod.satisfied for run in self.runs)

    def all_clean(self) -> bool:
        return all(run.confidentiality.is_clean() for run in self.runs)

    def peak_summary(self) -> Summary:
        return summarize([run.stats.max_per_round() for run in self.runs])

    def total_summary(self) -> Summary:
        return summarize([run.stats.total for run in self.runs])

    def fallback_rate(self) -> float:
        shots = served = 0
        for run in self.runs:
            paths = run.qod.path_counts(admissible_only=True)
            shots += paths.get("shoot", 0)
            served += sum(paths.values())
        return shots / served if served else 0.0

    def latency_summary(self) -> Summary:
        latencies: List[float] = []
        for run in self.runs:
            latencies.extend(run.qod.latencies())
        return summarize(latencies) if latencies else summarize([0])


@dataclass
class SweepResult:
    """All cells of a sweep."""

    cells: List[CellResult]

    def all_satisfied(self) -> bool:
        return all(cell.all_satisfied() for cell in self.cells)

    def all_clean(self) -> bool:
        return all(cell.all_clean() for cell in self.cells)

    def series(
        self, x_axis: str, metric: Callable[[CellResult], float]
    ) -> List[Tuple[object, float]]:
        """Project the sweep onto ``(cell[x_axis], metric(cell))`` pairs."""
        return [(cell.cell[x_axis], metric(cell)) for cell in self.cells]

    def table_rows(self) -> List[List[object]]:
        rows = []
        for cell in self.cells:
            peak = cell.peak_summary()
            rows.append(
                [
                    *[cell.cell[key] for key in sorted(cell.cell)],
                    cell.seeds,
                    round(peak.mean, 1),
                    int(peak.maximum),
                    round(cell.fallback_rate(), 4),
                    cell.all_satisfied(),
                    cell.all_clean(),
                ]
            )
        return rows

    def table_headers(self) -> List[str]:
        if not self.cells:
            return []
        return [
            *sorted(self.cells[0].cell),
            "seeds",
            "peak mean",
            "peak max",
            "fallback",
            "qod",
            "clean",
        ]


def sweep_congos(
    builder: ScenarioBuilder,
    cells: Iterable[Mapping[str, object]],
    seeds: Sequence[int] = (0, 1),
    **fixed: object,
) -> SweepResult:
    """Run ``builder(**fixed, **cell, seed=s)`` for every cell and seed.

    ``builder`` is any scenario builder from :mod:`repro.harness.scenarios`
    (they all accept ``n``, ``rounds``, ``seed`` plus their own knobs).
    """
    results: List[CellResult] = []
    for cell in cells:
        cell_dict = dict(cell)
        runs = []
        for seed in seeds:
            scenario = builder(seed=seed, **fixed, **cell_dict)
            runs.append(run_congos_scenario(scenario))
        results.append(CellResult(cell=cell_dict, runs=runs))
    return SweepResult(cells=results)
