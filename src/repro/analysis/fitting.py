"""Scaling-exponent estimation for the shape experiments.

Bench E6 measures the maximum per-round message count at several ``n`` and
asks: what exponent ``alpha`` best explains ``messages ~ n^alpha``?  The
paper predicts ``alpha = 1 + C/sqrt(dmin)`` plus polylog corrections, so
the fitted exponent should (a) sit well below 2 for long deadlines, and
(b) decrease as ``dmin`` grows.

Pure-Python least squares in log-log space; no numpy dependency so the
core library stays dependency-free (numpy remains available for heavier
analysis if installed).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

__all__ = ["PowerFit", "fit_power_law", "fit_with_polylog"]


@dataclass(frozen=True)
class PowerFit:
    """Result of fitting ``y = scale * x^exponent``."""

    exponent: float
    scale: float
    r_squared: float

    def predict(self, x: float) -> float:
        return self.scale * (x ** self.exponent)


def _linear_fit(xs: Sequence[float], ys: Sequence[float]) -> tuple:
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    if sxx == 0:
        raise ValueError("degenerate fit: all x equal")
    slope = sxy / sxx
    intercept = mean_y - slope * mean_x
    ss_res = sum(
        (y - (slope * x + intercept)) ** 2 for x, y in zip(xs, ys)
    )
    ss_tot = sum((y - mean_y) ** 2 for y in ys)
    r_squared = 1.0 - (ss_res / ss_tot if ss_tot else 0.0)
    return slope, intercept, r_squared


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> PowerFit:
    """Least-squares fit of ``y = scale * x^exponent`` in log-log space."""
    if len(xs) != len(ys):
        raise ValueError("x and y lengths differ")
    if len(xs) < 2:
        raise ValueError("need at least two points")
    if any(x <= 0 for x in xs) or any(y <= 0 for y in ys):
        raise ValueError("power-law fit needs positive data")
    log_xs = [math.log(x) for x in xs]
    log_ys = [math.log(y) for y in ys]
    slope, intercept, r_squared = _linear_fit(log_xs, log_ys)
    return PowerFit(exponent=slope, scale=math.exp(intercept), r_squared=r_squared)


def fit_with_polylog(
    ns: Sequence[float], ys: Sequence[float], polylog_power: float = 2.0
) -> PowerFit:
    """Fit ``y = scale * n^exponent * log2(n)^polylog_power``.

    Divides out the assumed polylog factor first, so the returned exponent
    isolates the polynomial part the theorems speak about.
    """
    adjusted = [
        y / (max(1.0, math.log2(max(2, n))) ** polylog_power)
        for n, y in zip(ns, ys)
    ]
    return fit_power_law(ns, adjusted)
