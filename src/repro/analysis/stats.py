"""Run statistics helpers: aggregation across seeds, w.h.p. checks."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Sequence

__all__ = ["Summary", "summarize", "all_runs_hold", "binomial_upper_p"]


@dataclass(frozen=True)
class Summary:
    """Descriptive statistics of a sample."""

    count: int
    mean: float
    stdev: float
    minimum: float
    maximum: float
    median: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "stdev": self.stdev,
            "min": self.minimum,
            "max": self.maximum,
            "median": self.median,
        }


def summarize(values: Sequence[float]) -> Summary:
    if not values:
        raise ValueError("cannot summarise an empty sample")
    ordered = sorted(float(v) for v in values)
    count = len(ordered)
    mean = sum(ordered) / count
    variance = sum((v - mean) ** 2 for v in ordered) / count
    mid = count // 2
    if count % 2:
        median = ordered[mid]
    else:
        median = (ordered[mid - 1] + ordered[mid]) / 2
    return Summary(
        count=count,
        mean=mean,
        stdev=math.sqrt(variance),
        minimum=ordered[0],
        maximum=ordered[-1],
        median=median,
    )


def all_runs_hold(flags: Sequence[bool]) -> bool:
    """Probability-1 claims must hold in *every* run, not on average."""
    return all(flags)


def binomial_upper_p(successes: int, trials: int) -> float:
    """A crude upper confidence bound on a failure probability.

    With ``trials`` independent runs and ``failures = trials - successes``
    observed, returns ``(failures + 1) / (trials + 1)`` — the rule-of-one
    style bound used to report w.h.p. claims from finitely many runs.
    """
    if trials < 1 or not 0 <= successes <= trials:
        raise ValueError("invalid binomial sample")
    failures = trials - successes
    return (failures + 1) / (trials + 1)
