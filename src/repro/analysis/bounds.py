"""Closed-form versions of the paper's complexity bounds.

These formulas are the *claims* the benches compare measurements against.
They are exact transcriptions of the theorem statements (up to the
polylog/constant slack the statements themselves leave unspecified, which
callers control via the ``constant`` and ``polylog_power`` knobs).
"""

from __future__ import annotations

import math

__all__ = [
    "congos_upper_bound",
    "collusion_upper_bound",
    "strong_confidentiality_lower_bound",
    "collusion_lower_bound",
    "groupgossip_upper_bound",
    "theorem1_expected_pairs",
]


def _polylog(n: int, power: float) -> float:
    return max(1.0, math.log2(max(2, n))) ** power


def groupgossip_upper_bound(
    n: int, dmin: int, constant: float = 1.0, polylog_power: float = 1.0
) -> float:
    """The [13] black box: ``O(n^{1+6/cbrt(dmin)} polylog n)`` per round."""
    if dmin < 1:
        raise ValueError("dmin must be positive")
    exponent = 1.0 + 6.0 / (dmin ** (1.0 / 3.0))
    return constant * (n ** exponent) * _polylog(n, polylog_power)


def congos_upper_bound(
    n: int,
    dmin: int,
    constant: float = 1.0,
    polylog_power: float = 2.0,
    fanout_exponent_constant: float = 48.0,
) -> float:
    """Theorem 11: ``O((n^{1+48/sqrt(dmin)} + n^{1+6/cbrt(dmin)}) polylog n)``.

    ``fanout_exponent_constant`` substitutes the paper's 48 when comparing
    against runs configured with a smaller constant (the *shape* check).
    """
    if dmin < 1:
        raise ValueError("dmin must be positive")
    proxy_term = n ** (1.0 + fanout_exponent_constant / math.sqrt(dmin))
    gossip_term = n ** (1.0 + 6.0 / (dmin ** (1.0 / 3.0)))
    return constant * (proxy_term + gossip_term) * _polylog(n, polylog_power)


def collusion_upper_bound(
    n: int,
    dmin: int,
    tau: int,
    constant: float = 1.0,
    polylog_power: float = 2.0,
    fanout_exponent_constant: float = 48.0,
) -> float:
    """Theorem 16: the Theorem-11 bound multiplied by ``tau^2``."""
    if tau < 1:
        raise ValueError("tau must be >= 1")
    return (tau ** 2) * congos_upper_bound(
        n,
        dmin,
        constant=constant,
        polylog_power=polylog_power,
        fanout_exponent_constant=fanout_exponent_constant,
    )


def strong_confidentiality_lower_bound(
    n: int, dmax: int, epsilon: float = 0.5, constant: float = 1.0
) -> float:
    """Theorem 1: ``Omega(n^{3/2 - eps} / dmax)`` per round."""
    if not 0 < epsilon < 1.5:
        raise ValueError("epsilon must be in (0, 1.5)")
    if dmax < 1:
        raise ValueError("dmax must be positive")
    return constant * (n ** (1.5 - epsilon)) / dmax


def collusion_lower_bound(
    n: int, dmax: int, tau: int, epsilon: float = 0.5, constant: float = 1.0
) -> float:
    """Theorem 12: ``Omega(min(n tau, n^{3/2 - eps}) / dmax)`` per round."""
    if tau < 1:
        raise ValueError("tau must be >= 1")
    return constant * min(n * tau, n ** (1.5 - epsilon)) / dmax


def theorem1_expected_pairs(n: int, c: int) -> float:
    """Expected (source, destination) pairs in the Theorem-1 layout.

    The proof lower-bounds the pair count by ``n x / 2`` w.h.p.; the
    expectation is ``n * (n-1) * x/n ~= n x``.
    """
    x = n ** (0.5 - 2.0 / c)
    return n * (n - 1) * (x / n)
