"""Microbenchmarks, profiling and n-scaling benches (E17/E17b).

The perf subsystem has three layers:

* :mod:`repro.perf.cases` — a registry of stable-keyed :class:`PerfCase`
  microbenchmarks, each isolating one hot path of the round engine
  (message construction, routing, observer dispatch, epidemic target
  selection, audit absorption, block arithmetic, plus one end-to-end
  steady run);
* :mod:`repro.perf.bench` — warmup/repeat timing with optional
  cProfile-backed hotspot attribution, producing machine-readable
  payloads;
* :mod:`repro.perf.scaling` — the E17 engine-scaling bench (wall-clock
  vs ``n`` against the pinned pre-optimization baseline) and the E17b
  chaos-scaling soak (ROADMAP item 2: the fault matrix at larger ``n``).

Everything rides the ``perf`` CLI subcommand (``python -m
repro.harness.cli perf ...``).  The optimization contract the benches
police is documented in DESIGN.md §8: default runs must stay
bit-identical — same rng stream consumption, same event order — which
the golden-digest tests (``tests/test_golden_digests.py``) enforce.
"""

from repro.perf.bench import BenchResult, profile_case, run_case, run_suite, suite_payload
from repro.perf.cases import PerfCase, all_cases, case_keys, get_case, register_case
from repro.perf.scaling import (
    E17B_BENCH_NAME,
    E17_BENCH_NAME,
    PRE_PR_BASELINE,
    chaos_scaling_payload,
    engine_scaling_payload,
    run_chaos_scaling,
    run_engine_scaling,
    scaling_spec,
)

__all__ = [
    "BenchResult",
    "PerfCase",
    "E17_BENCH_NAME",
    "E17B_BENCH_NAME",
    "PRE_PR_BASELINE",
    "all_cases",
    "case_keys",
    "chaos_scaling_payload",
    "engine_scaling_payload",
    "get_case",
    "profile_case",
    "register_case",
    "run_case",
    "run_chaos_scaling",
    "run_engine_scaling",
    "run_suite",
    "scaling_spec",
    "suite_payload",
]
