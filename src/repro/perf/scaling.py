"""E17 engine-scaling and E17b chaos-scaling benches.

E17 answers "how fast is one default run, and how does that scale with
``n``?": it times the canonical steady-workload cell (seed 0, lean
params, 120 rounds) at several system sizes, records the payload digest
of every run (so the artifact itself proves the optimized engine still
produces bit-identical results), and reports speedups against
:data:`PRE_PR_BASELINE` — wall-clock numbers measured on the same
machine immediately before the hot-path overhaul landed.

The bench has an **engine axis**: every row carries the round kernel it
ran on (``"object"`` or the vectorized ``"array"`` engine from
:mod:`repro.fastcore`), and when one artifact holds both engines at the
same ``n`` the payload's ``engine_speedup`` section records the
array-vs-object ratio measured in the same invocation.  Array-engine
digests are *not* comparable to object-engine digests — the array
engine's contract is statistical parity (DESIGN.md §11), gated by
:mod:`repro.fastcore.parity`, not bit identity.

E17b closes ROADMAP item 2: the E15 chaos matrix was only ever run at
n=16, leaving open whether the drop=0.5 QoD cliff is a small-n artifact.
``run_chaos_scaling`` re-runs the drop axis at larger ``n`` and
``chaos_scaling_payload`` locates the cliff — the lowest drop intensity
at which quality-of-delivery fails — per system size.

Artifacts: ``BENCH_e17_engine_scaling.json`` / ``BENCH_e17b_chaos_scaling.json``
(written by the ``perf scaling`` / ``perf chaos-scaling`` CLI commands).
"""

from __future__ import annotations

import hashlib
import time
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.sweeps import SweepResult
from repro.chaos.soak import chaos_cells, run_soak
from repro.core.config import CongosParams
from repro.exec.cache import ResultCache
from repro.exec.progress import Progress
from repro.exec.tasks import RunSpec, canonical_json, execute_spec

__all__ = [
    "E17_BENCH_NAME",
    "E17B_BENCH_NAME",
    "PRE_PR_BASELINE",
    "scaling_spec",
    "run_engine_scaling",
    "engine_scaling_payload",
    "run_chaos_scaling",
    "chaos_scaling_payload",
]

E17_BENCH_NAME = "e17_engine_scaling"
E17B_BENCH_NAME = "e17b_chaos_scaling"

# Wall-clock seconds for scaling_spec(n) measured at commit 29cc6bd (the
# last commit before the hot-path overhaul), single process, warm
# interpreter.  These are the "before" numbers every E17 artifact compares
# against; they are fixed history, not re-measured.
PRE_PR_BASELINE: Dict[int, float] = {16: 0.226, 64: 11.277, 256: 147.361}

DEFAULT_NS: Tuple[int, ...] = (16, 64, 256)
CHAOS_NS: Tuple[int, ...] = (64, 256)
CHAOS_DROPS: Tuple[float, ...] = (0.0, 0.15, 0.3, 0.5)


def scaling_spec(
    n: int, rounds: int = 120, deadline: int = 64, engine: str = "object"
) -> RunSpec:
    """The canonical E17 cell: steady workload, lean params, seed 0."""
    return RunSpec.make(
        "steady",
        seed=0,
        n=n,
        rounds=rounds,
        deadline=deadline,
        rate=1,
        period=4,
        params=CongosParams.lean(),
        engine=engine,
    )


def _payload_digest(record) -> str:
    clean = record.without_profile().to_dict()
    return hashlib.sha256(canonical_json(clean).encode("utf-8")).hexdigest()


def run_engine_scaling(
    ns: Sequence[int] = DEFAULT_NS,
    rounds: int = 120,
    deadline: int = 64,
    repeats: int = 1,
    engine: str = "object",
    progress: Optional[Progress] = None,
) -> List[Dict[str, object]]:
    """Time the canonical steady cell at each ``n``, in-process.

    Runs single-process on purpose: E17 measures per-run engine cost, not
    pool throughput.  ``repeats`` > 1 keeps the best wall time (same
    spec => identical record, so only timing varies).  ``engine`` selects
    the round kernel; pass rows from several engines to
    :func:`engine_scaling_payload` together and it computes the
    array-vs-object speedup at every shared ``n``.
    """
    rows: List[Dict[str, object]] = []
    for n in ns:
        spec = scaling_spec(n, rounds=rounds, deadline=deadline, engine=engine)
        record = None
        wall = None
        for _ in range(max(1, repeats)):
            start = time.perf_counter()
            record = execute_spec(spec)
            elapsed = time.perf_counter() - start
            if wall is None or elapsed < wall:
                wall = elapsed
        # The pinned pre-overhaul baseline is object-engine history; it is
        # the "before" column for every engine (for the array engine it is
        # the headline before-any-optimization speedup).
        baseline = PRE_PR_BASELINE.get(n)
        wall = round(wall, 3)
        rows.append(
            {
                "n": n,
                "engine": engine,
                "rounds": rounds,
                "deadline": deadline,
                "spec_key": spec.key,
                "digest": _payload_digest(record),
                "peak": record.peak,
                "total": record.total,
                "qod_satisfied": record.qod_satisfied,
                "clean": record.clean,
                "wall_s": wall,
                "baseline_s": baseline,
                "speedup": (
                    round(baseline / wall, 2) if baseline and wall else None
                ),
            }
        )
        if progress is not None:
            progress.task_done(wall_time=wall)
    return rows


def engine_scaling_payload(rows: Iterable[Mapping[str, object]]) -> Dict[str, object]:
    """The E17 artifact body.

    ``runs`` (spec keys, digests, delivery/confidentiality outcomes) is
    deterministic; ``timing`` holds the nondeterministic wall-clock and
    speedup numbers, mirroring the payload/"profile" split used by the
    other BENCH artifacts.
    """
    rows = list(rows)
    runs = [
        {
            key: row.get(key, "object" if key == "engine" else None)
            for key in (
                "n",
                "engine",
                "rounds",
                "deadline",
                "spec_key",
                "digest",
                "peak",
                "total",
                "qod_satisfied",
                "clean",
            )
        }
        for row in rows
    ]
    timing = [
        {
            "n": row["n"],
            "engine": row.get("engine", "object"),
            "wall_s": row["wall_s"],
            "baseline_s": row["baseline_s"],
            "speedup": row["speedup"],
        }
        for row in rows
    ]
    # Array-vs-object speedup at every n both engines covered in THIS
    # artifact (same machine, same invocation — unlike the pinned
    # historical baseline above).
    wall_by_engine: Dict[str, Dict[int, float]] = {}
    for entry in timing:
        wall_by_engine.setdefault(entry["engine"], {})[entry["n"]] = entry[
            "wall_s"
        ]
    object_wall = wall_by_engine.get("object", {})
    array_wall = wall_by_engine.get("array", {})
    engine_speedup = {
        str(n): round(object_wall[n] / array_wall[n], 2)
        for n in sorted(set(object_wall) & set(array_wall))
        if array_wall[n] > 0
    }
    return {
        "scenario": "steady",
        "engines": sorted({entry["engine"] for entry in timing}),
        "runs": runs,
        "baseline": {
            "commit": "29cc6bd",
            "wall_s": {str(n): PRE_PR_BASELINE[n] for n in sorted(PRE_PR_BASELINE)},
        },
        "timing": timing,
        "engine_speedup": engine_speedup,
    }


def run_chaos_scaling(
    ns: Sequence[int] = CHAOS_NS,
    drop: Sequence[float] = CHAOS_DROPS,
    delay: Sequence[float] = (0.1,),
    seeds: Sequence[int] = (0, 1),
    rounds: int = 120,
    deadline: int = 64,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    resume: bool = True,
    progress: Optional[Progress] = None,
    **overrides: object,
) -> List[Tuple[int, SweepResult, Dict[str, object]]]:
    """Run the E15 chaos drop axis at each system size in ``ns``.

    Returns ``(n, sweep, fixed)`` triples; feed them to
    :func:`chaos_scaling_payload`.  Fixed knobs mirror the ``chaos-soak``
    CLI defaults so the n=16 E15 matrix stays directly comparable.
    """
    fixed_base: Dict[str, object] = {
        "rounds": rounds,
        "deadline": deadline,
        "max_delay": 4,
        "duplicate": 0.02,
        "reorder": 0.0,
        "partition_period": 0,
        "partition_width": 0,
        "churn": 0.0,
        "hardened": False,
    }
    fixed_base.update(overrides)
    results: List[Tuple[int, SweepResult, Dict[str, object]]] = []
    for n in ns:
        fixed = dict(fixed_base, n=n)
        sweep = run_soak(
            chaos_cells(drop, delay),
            seeds=seeds,
            jobs=jobs,
            cache=cache,
            resume=resume,
            progress=progress,
            **fixed,
        )
        results.append((n, sweep, fixed))
    return results


def _cliff_drop(
    cells: Sequence[Mapping[str, object]], threshold: float
) -> Optional[float]:
    """Lowest drop intensity where QoD fails or delivery dips below
    ``threshold`` (None if the whole axis holds)."""
    failing = [
        float(entry["cell"]["drop"])
        for entry in cells
        if not entry["qod_satisfied"]
        or (
            entry["delivery_rate"] is not None
            and entry["delivery_rate"] < threshold
        )
    ]
    return min(failing) if failing else None


def chaos_scaling_payload(
    results: Sequence[Tuple[int, SweepResult, Mapping[str, object]]],
    threshold: float = 0.999,
) -> Dict[str, object]:
    """The E17b artifact body: per-n soak payloads plus cliff placement."""
    from repro.chaos.soak import soak_payload

    per_n: List[Dict[str, object]] = []
    cliff: Dict[str, object] = {}
    for n, sweep, fixed in results:
        body = soak_payload(sweep, fixed)
        body["n"] = n
        body["fixed"] = dict(fixed)
        per_n.append(body)
        cliff[str(n)] = _cliff_drop(body["cells"], threshold)
    return {
        "scenario": "chaos",
        "per_n": per_n,
        "cliff": {
            "threshold": threshold,
            "first_failing_drop": cliff,
        },
    }
