"""Warmup/repeat timing and cProfile hotspot attribution for perf cases.

``run_case`` is the measurement kernel: a fresh workload per repeat (so
caches filled by one repeat never flatter the next), ``time.perf_counter``
around the operation only, and best/mean/all-samples reported.  *Best* is
the headline number — it is the least noise-contaminated estimate of the
true cost on a busy CI box.

``profile_case`` runs one extra (untimed) invocation under ``cProfile``
and extracts the top cumulative-time functions, so a regression found in
the numbers can immediately be attributed to a code path without
re-running anything locally.
"""

from __future__ import annotations

import cProfile
import pstats
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.perf.cases import PerfCase, all_cases

__all__ = [
    "BenchResult",
    "run_case",
    "profile_case",
    "run_suite",
    "suite_payload",
]


@dataclass(frozen=True)
class BenchResult:
    """Timing (and optional hotspot) summary for one perf case."""

    key: str
    title: str
    ops: int
    repeats: int
    warmup: int
    samples: Tuple[float, ...]
    hotspots: Tuple[Dict[str, object], ...] = ()

    @property
    def best(self) -> float:
        return min(self.samples)

    @property
    def mean(self) -> float:
        return sum(self.samples) / len(self.samples)

    @property
    def best_per_op(self) -> float:
        return self.best / max(1, self.ops)

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "key": self.key,
            "title": self.title,
            "ops": self.ops,
            "repeats": self.repeats,
            "warmup": self.warmup,
            "best_s": self.best,
            "mean_s": self.mean,
            "best_per_op_us": self.best_per_op * 1e6,
            "samples_s": list(self.samples),
        }
        if self.hotspots:
            payload["hotspots"] = [dict(h) for h in self.hotspots]
        return payload


def run_case(
    case: PerfCase,
    repeats: int = 5,
    warmup: int = 1,
    profile: bool = False,
    profile_top: int = 8,
) -> BenchResult:
    """Time one case: ``warmup`` discarded runs, then ``repeats`` samples.

    Every run (warmup and timed alike) gets a fresh ``case.setup()`` so
    per-instance caches start cold each time; only the operation itself is
    inside the timing window.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    for _ in range(warmup):
        case.setup()()
    samples: List[float] = []
    for _ in range(repeats):
        op = case.setup()
        start = time.perf_counter()
        op()
        samples.append(time.perf_counter() - start)
    hotspots: Tuple[Dict[str, object], ...] = ()
    if profile:
        hotspots = profile_case(case, top=profile_top)
    return BenchResult(
        key=case.key,
        title=case.title,
        ops=case.ops,
        repeats=repeats,
        warmup=warmup,
        samples=tuple(samples),
        hotspots=hotspots,
    )


def profile_case(case: PerfCase, top: int = 8) -> Tuple[Dict[str, object], ...]:
    """Run the case once under cProfile; return the top-cumtime functions.

    Each entry: ``{"function": "module:line(name)", "calls": int,
    "tottime_s": float, "cumtime_s": float}``, ordered by cumulative time.
    """
    op = case.setup()
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        op()
    finally:
        profiler.disable()
    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative")
    rows: List[Dict[str, object]] = []
    for func, (calls, _primitive, tottime, cumtime, _callers) in sorted(
        stats.stats.items(), key=lambda kv: kv[1][3], reverse=True
    ):
        filename, line, name = func
        if filename.startswith("<") and name in ("<module>",):
            continue
        rows.append(
            {
                "function": "{}:{}({})".format(filename, line, name),
                "calls": calls,
                "tottime_s": round(tottime, 6),
                "cumtime_s": round(cumtime, 6),
            }
        )
        if len(rows) >= top:
            break
    return tuple(rows)


def run_suite(
    cases: Optional[Iterable[PerfCase]] = None,
    repeats: int = 5,
    warmup: int = 1,
    profile: bool = False,
) -> List[BenchResult]:
    """Run a set of cases (default: the full registry) in key order."""
    if cases is None:
        cases = all_cases()
    return [
        run_case(case, repeats=repeats, warmup=warmup, profile=profile)
        for case in cases
    ]


def suite_payload(results: Iterable[BenchResult]) -> Dict[str, object]:
    """Machine-readable suite summary for ``write_bench_json``."""
    rows = [result.to_dict() for result in results]
    return {
        "cases": rows,
        "total_best_s": sum(row["best_s"] for row in rows),
    }
