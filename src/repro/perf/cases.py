"""Stable-keyed microbenchmark cases for the round-engine hot paths.

Each :class:`PerfCase` isolates one code path that the E17 profiling
identified as hot (or that a past optimization must keep fast): the case
``setup`` builds a fresh workload and returns a zero-argument operation;
the bench layer times that operation over warmup/repeat cycles.  Keys are
stable strings — they name time series in ``BENCH`` artifacts across
commits, so never rename one lightly.

Cases deliberately run in milliseconds at their default sizes: the CI
``perf-smoke`` job runs the whole suite at reduced repeats, and flaky
wall-clock gates are explicitly out of scope (regressions are caught by
inspecting the committed artifact trends, correctness by the golden-digest
tests).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

__all__ = ["PerfCase", "register_case", "get_case", "all_cases", "case_keys"]

Operation = Callable[[], object]


@dataclass(frozen=True)
class PerfCase:
    """One microbenchmark: ``setup()`` builds and returns the timed op.

    ``setup`` is re-invoked for every repeat so state mutated by one
    timing run (advanced engines, filled caches) never leaks into the
    next.  ``ops`` is the number of logical operations one call of the
    returned callable performs, for ns/op reporting.
    """

    key: str
    title: str
    setup: Callable[[], Operation]
    ops: int = 1
    tags: Tuple[str, ...] = field(default=())


_REGISTRY: Dict[str, PerfCase] = {}


def register_case(case: PerfCase) -> PerfCase:
    """Add a case to the registry; keys must be unique."""
    if case.key in _REGISTRY:
        raise ValueError("duplicate perf case key {!r}".format(case.key))
    _REGISTRY[case.key] = case
    return case


def get_case(key: str) -> PerfCase:
    try:
        return _REGISTRY[key]
    except KeyError:
        raise KeyError(
            "unknown perf case {!r}; known: {}".format(key, ", ".join(case_keys()))
        )


def all_cases(tags: Optional[Tuple[str, ...]] = None) -> List[PerfCase]:
    """All registered cases (optionally filtered by tag), key-sorted."""
    cases = sorted(_REGISTRY.values(), key=lambda case: case.key)
    if tags:
        wanted = set(tags)
        cases = [case for case in cases if wanted & set(case.tags)]
    return cases


def case_keys() -> List[str]:
    return sorted(_REGISTRY)


# ----------------------------------------------------------------------
# Built-in cases
# ----------------------------------------------------------------------

_N_MESSAGES = 5000


def _setup_message_construct() -> Operation:
    from repro.sim.messages import Message, ServiceTags

    def op() -> object:
        last = None
        for i in range(_N_MESSAGES):
            last = Message(
                src=i % 64, dst=(i + 1) % 64, service=ServiceTags.ALL_GOSSIP
            )
        return last

    return op


def _setup_network_route() -> Operation:
    from repro.sim.messages import Message, ServiceTags
    from repro.sim.network import Network

    n = 64
    network = Network(n)
    burst = [
        Message(src=i % n, dst=(i * 7 + 1) % n, service=ServiceTags.BASELINE)
        for i in range(_N_MESSAGES)
    ]
    alive = set(range(n))

    def op() -> object:
        return network.route(0, burst, alive_after_round=alive, boundary_pids=set())

    return op


def _noop_engine(n: int, observers=()):
    from repro.sim.engine import Engine
    from repro.sim.process import NodeBehavior

    return Engine(n, lambda pid: NodeBehavior(pid, n), observers=observers)


def _setup_engine_round_noop() -> Operation:
    engine = _noop_engine(128)

    def op() -> object:
        engine.run(20)
        return engine.rounds_executed

    return op


def _setup_engine_round_observers() -> Operation:
    # A SimObserver subclass overriding nothing: the dispatch tables must
    # keep its per-message cost at zero.
    from repro.sim.engine import SimObserver

    engine = _noop_engine(128, observers=[SimObserver() for _ in range(4)])

    def op() -> object:
        engine.run(20)
        return engine.rounds_executed

    return op


def _setup_epidemic_targets() -> Operation:
    from repro.gossip.epidemic import choose_push_targets

    rng = random.Random(1234)
    scope = tuple(range(64))

    def op() -> object:
        last = None
        for pid in range(64):
            for _ in range(8):
                last = choose_push_targets(rng, scope, pid, 6)
        return last

    return op


def _make_gossip(pid: int, deliver=None):
    from repro.gossip.continuous import ContinuousGossip

    return ContinuousGossip(
        pid=pid,
        n=32,
        channel="perf/gossip",
        scope=range(32),
        rng=random.Random(pid),
        deliver=deliver,
    )


def _setup_continuous_round() -> Operation:
    # One inject + saturation: receivers absorb the same batch repeatedly,
    # exercising the seen-check fast path and the broadcast-horizon scan.
    sender = _make_gossip(0)
    receiver = _make_gossip(1)
    for i in range(40):
        sender.inject(0, payload=("blob", i), deadline=48, dest=range(32))

    def op() -> object:
        total = 0
        for round_no in range(1, 12):
            messages = sender.send_phase(round_no)
            total += len(messages)
            for message in messages:
                if message.dst == 1:
                    receiver.on_message(round_no, message)
            receiver.end_round(round_no)
        return total

    return op


def _setup_audit_deliver() -> Operation:
    from repro.audit.confidentiality import ConfidentialityAuditor
    from repro.gossip.rumor import GossipItem
    from repro.sim.messages import Message, ServiceTags, fragment_atom

    class _Frag:
        def __init__(self, rid: str, partition: int, group: int) -> None:
            self.atom = fragment_atom(rid, partition, group)

        def reveals(self):
            yield self.atom

    items = tuple(
        GossipItem(
            uid=("perf", i),
            origin=0,
            payload=_Frag("r0:{}".format(i % 4), i % 4, i % 2),
            expiry=100,
            dest=frozenset(range(16)),
        )
        for i in range(50)
    )
    messages = [
        Message(src=0, dst=dst, service=ServiceTags.GROUP_GOSSIP, payload=items)
        for dst in range(1, 16)
    ]

    def op() -> object:
        auditor = ConfidentialityAuditor(num_partitions=4, num_groups=2)
        for round_no in range(8):
            for message in messages:
                auditor.on_deliver(round_no, message)
        return auditor.total_border_messages

    return op


def _setup_clock_arithmetic() -> Operation:
    from repro.sim.clock import BlockSchedule

    schedule = BlockSchedule(256)

    def op() -> object:
        total = 0
        for round_no in range(4096):
            total += schedule.iteration_of(round_no)
            total += schedule.round_in_iteration(round_no)
            if schedule.is_iteration_last_round(round_no):
                total += 1
        return total

    return op


def _setup_e6_steady_small() -> Operation:
    # The end-to-end anchor: a small E6 steady cell through the full
    # pipeline (engine + network + CONGOS + auditors).
    from repro.core.config import CongosParams
    from repro.exec.tasks import RunSpec, execute_spec

    spec = RunSpec.make(
        "steady",
        seed=0,
        n=16,
        rounds=96,
        deadline=64,
        rate=1,
        period=4,
        params=CongosParams.lean(),
    )

    def op() -> object:
        return execute_spec(spec).total

    return op


register_case(
    PerfCase(
        key="message_construct",
        title="Message construction ({} envelopes)".format(_N_MESSAGES),
        setup=_setup_message_construct,
        ops=_N_MESSAGES,
        tags=("sim", "micro"),
    )
)
register_case(
    PerfCase(
        key="network_route",
        title="Network.route burst ({} messages)".format(_N_MESSAGES),
        setup=_setup_network_route,
        ops=_N_MESSAGES,
        tags=("sim", "micro"),
    )
)
register_case(
    PerfCase(
        key="engine_round_noop",
        title="Engine rounds, no observers (n=128 x 20 rounds)",
        setup=_setup_engine_round_noop,
        ops=20,
        tags=("sim", "micro"),
    )
)
register_case(
    PerfCase(
        key="engine_round_noop_observers",
        title="Engine rounds, 4 no-op observers (n=128 x 20 rounds)",
        setup=_setup_engine_round_observers,
        ops=20,
        tags=("sim", "micro"),
    )
)
register_case(
    PerfCase(
        key="epidemic_targets",
        title="choose_push_targets (64 pids x 8 pushes)",
        setup=_setup_epidemic_targets,
        ops=64 * 8,
        tags=("gossip", "micro"),
    )
)
register_case(
    PerfCase(
        key="continuous_round",
        title="ContinuousGossip send/absorb (40 items x 11 rounds)",
        setup=_setup_continuous_round,
        ops=11,
        tags=("gossip", "micro"),
    )
)
register_case(
    PerfCase(
        key="audit_deliver",
        title="ConfidentialityAuditor.on_deliver (15 dsts x 8 rounds x 50 items)",
        setup=_setup_audit_deliver,
        ops=15 * 8,
        tags=("audit", "micro"),
    )
)
register_case(
    PerfCase(
        key="clock_arithmetic",
        title="BlockSchedule iteration arithmetic (4096 rounds)",
        setup=_setup_clock_arithmetic,
        ops=4096,
        tags=("sim", "micro"),
    )
)
register_case(
    PerfCase(
        key="e6_steady_small",
        title="End-to-end steady run (n=16, 96 rounds, lean)",
        setup=_setup_e6_steady_small,
        ops=1,
        tags=("end_to_end",),
    )
)


# ----------------------------------------------------------------------
# Array-engine kernels (repro.fastcore) — registered only when the
# repro[fast] extra's numpy is importable, so the registry (and tier-1)
# stays intact without it.
# ----------------------------------------------------------------------

_BITSET_ROUNDS = 64
_SPLIT_ROUNDS = 32
_FANOUT_ROUNDS = 32


def _setup_fastcore_bitset_membership() -> Operation:
    import numpy as np

    from repro.fastcore import bitset

    n = 4096
    rng = np.random.default_rng(7)
    members = bitset.from_indices(rng.choice(n, size=n // 3, replace=False), n)
    other = bitset.from_indices(rng.choice(n, size=n // 3, replace=False), n)
    probes = rng.integers(0, n, size=n)

    def op() -> object:
        total = 0
        for _ in range(_BITSET_ROUNDS):
            total += int(bitset.test_bits(members, probes).sum())
            total += bitset.popcount(bitset.andnot(members, other))
            total += int(bitset.is_subset(other, members))
        return total

    return op


def _setup_fastcore_fragment_xor() -> Operation:
    import numpy as np

    from repro.fastcore.kernels import merge_shares, split_shares

    rng = np.random.default_rng(11)
    data = bytes(range(256)) * 4  # 1 KiB payload, 16 partitions x 2 groups

    def op() -> object:
        merged = b""
        for _ in range(_SPLIT_ROUNDS):
            shares = split_shares(data, 16, 2, rng)
            merged = merge_shares(shares[0])
        assert merged == data
        return merged

    return op


def _setup_fastcore_fanout_sampling() -> Operation:
    import numpy as np

    from repro.fastcore.kernels import sample_targets_excluding_self

    rng = np.random.default_rng(13)
    scope = np.arange(256, dtype=np.int64)
    senders = np.arange(256, dtype=np.int64)

    def op() -> object:
        last = None
        for _ in range(_FANOUT_ROUNDS):
            last = sample_targets_excluding_self(rng, scope, senders, 6)
        return last

    return op


def _register_fastcore_cases() -> None:
    from repro.fastcore import numpy_available

    if not numpy_available():
        return
    register_case(
        PerfCase(
            key="fastcore_bitset_membership",
            title="fastcore bitset membership (n=4096, {} sweeps)".format(
                _BITSET_ROUNDS
            ),
            setup=_setup_fastcore_bitset_membership,
            ops=_BITSET_ROUNDS,
            tags=("fastcore", "micro"),
        )
    )
    register_case(
        PerfCase(
            key="fastcore_fragment_xor",
            title="fastcore batched fragment XOR (1 KiB x 16 partitions x "
            "{} splits)".format(_SPLIT_ROUNDS),
            setup=_setup_fastcore_fragment_xor,
            ops=_SPLIT_ROUNDS,
            tags=("fastcore", "micro"),
        )
    )
    register_case(
        PerfCase(
            key="fastcore_fanout_sampling",
            title="fastcore fanout sampling (256 senders x k=6 x "
            "{} rounds)".format(_FANOUT_ROUNDS),
            setup=_setup_fastcore_fanout_sampling,
            ops=_FANOUT_ROUNDS * 256,
            tags=("fastcore", "micro"),
        )
    )


_register_fastcore_cases()
