"""Protocol-external auditors: confidentiality and quality of delivery."""

from repro.audit.confidentiality import (
    CoalitionFinding,
    ConfidentialityAuditor,
    Violation,
)
from repro.audit.delivery import DeliveryAuditor, DeliveryOutcomeRecord, QoDReport
from repro.audit.failfast import FailFastMonitor, InvariantViolation
from repro.audit.metadata import MetadataAuditor, MetadataExposure

__all__ = [
    "CoalitionFinding",
    "ConfidentialityAuditor",
    "DeliveryAuditor",
    "DeliveryOutcomeRecord",
    "FailFastMonitor",
    "InvariantViolation",
    "MetadataAuditor",
    "MetadataExposure",
    "QoDReport",
    "Violation",
]
