"""Confidentiality auditing (Definition 2, Lemma 3, Lemma 14).

The auditor is an engine observer, entirely outside the protocol: it
inspects every *delivered* message's payload for knowledge atoms (rumor
plaintexts and XOR fragments) and maintains, per process, everything that
process has ever learned — including across crashes, because a curious
process could have copied data out before crashing.

Checks provided:

* **plaintext violations** — a process outside ``D + {source}`` received
  the rumor plaintext;
* **reconstruction violations** — a single outsider collected all groups
  of some partition (it can XOR the rumor together);
* **multiplicity breaches** — an outsider holds two or more fragments of
  the *same* partition (the invariant behind Lemma 14's "no process that
  is not in the destination set learns more than one fragment"); not yet
  a reconstruction for ``tau + 1 > 2``, but a protocol bug;
* **coalition analysis** — for any ``tau`` and coalition strategy, could
  the pooled knowledge reconstruct a rumor (Theorem 16's guarantee is
  "no" for coalitions of size ``<= tau``);
* **border messages** — fragment copies crossing from ``D + {source}`` to
  outsiders, the quantity Theorem 12's lower bound counts.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.adversary.collusion import CoalitionStrategy, min_cover_size
from repro.core.confidential_gossip import DirectAck
from repro.gossip.rumor import Rumor, RumorId
from repro.sim.engine import SimObserver
from repro.sim.messages import Message, reveals_of

__all__ = [
    "Violation",
    "CoalitionFinding",
    "ConfidentialityAuditor",
    "shed_rumor_leaks",
]


def shed_rumor_leaks(result) -> List[str]:
    """Audit that arrivals shed by admission control never surfaced.

    An open workload (:class:`repro.load.workload.OpenWorkload`) draws a
    rumor's confidential payload at *arrival* time — before admission —
    so a shed arrival is a secret the system declined to carry.  Nothing
    of it may exist in the run: its payload must appear in no injected
    rumor (admission resurrecting a shed entry would be a bug) and in no
    delivered payload anywhere.  Returns human-readable violations; an
    empty list is a clean verdict.  Runs without shed records (closed
    workloads, underload) are trivially clean.
    """
    workload = getattr(result, "workload", None)
    shed = getattr(workload, "shed_records", None)
    if not shed:
        return []
    by_payload = {record.data: record for record in shed}
    leaks: List[str] = []
    for rumor in workload.injected:
        record = by_payload.get(rumor.data)
        if record is not None:
            leaks.append(
                "shed arrival (src {}, shed r{} [{}]) was injected as {}".format(
                    record.src, record.shed_round, record.reason, rumor.rid
                )
            )
    for (rid, pid), (round_no, data, path) in result.delivery.deliveries.items():
        record = by_payload.get(data)
        if record is not None:
            leaks.append(
                "shed arrival (src {}, shed r{} [{}]) delivered to pid {} "
                "as {} via {} in r{}".format(
                    record.src,
                    record.shed_round,
                    record.reason,
                    pid,
                    rid,
                    path,
                    round_no,
                )
            )
    return leaks


@dataclass(frozen=True)
class Violation:
    """One confidentiality breach."""

    kind: str  # "plaintext" | "reconstruction" | "multiplicity" | "ack_leak"
    rid: RumorId
    pid: int
    round_no: int
    detail: str = ""


@dataclass(frozen=True)
class CoalitionFinding:
    """Result of a coalition check for one rumor."""

    rid: RumorId
    coalition: FrozenSet[int]
    reconstructs: bool
    partition: Optional[int] = None


class ConfidentialityAuditor(SimObserver):
    """Tracks knowledge flow and detects confidentiality breaches."""

    def __init__(self, num_partitions: int, num_groups: int):
        self.num_partitions = num_partitions
        self.num_groups = num_groups
        # rid -> rumor metadata
        self.rumors: Dict[RumorId, Rumor] = {}
        self.sources: Dict[RumorId, int] = {}
        # pid -> set of knowledge atoms
        self.knowledge: Dict[int, Set[Tuple]] = defaultdict(set)
        # (rid, partition, group) -> pids holding the fragment
        self.fragment_holders: Dict[Tuple[RumorId, int, int], Set[int]] = defaultdict(set)
        # rid -> pids who saw the plaintext
        self.plaintext_holders: Dict[RumorId, Set[int]] = defaultdict(set)
        self.violations: List[Violation] = []
        # rid -> number of fragment copies crossing the D+{src} border
        self.border_messages: Dict[RumorId, int] = defaultdict(int)
        self.total_border_messages = 0
        self._allowed_cache: Dict[RumorId, FrozenSet[int]] = {}
        # Gossip items are immutable and re-broadcast many times; cache, per
        # uid, the item's atoms plus the deduped rids of its fragment atoms
        # (what border accounting needs per delivery), and remember which
        # items each process has already absorbed.  Items that reveal no
        # atoms at all (hitSet shares, confirmations — the bulk of gossip
        # volume) can never affect the audit: their uids go in an inert set
        # checked with a single lookup per delivery.
        self._item_atoms: Dict[Tuple, Tuple[Tuple[Tuple, ...], Tuple]] = {}
        self._inert_uids: Set[Tuple] = set()
        self._seen_items: Dict[int, Set[Tuple]] = defaultdict(set)
        # A sender reuses one payload tuple for its whole fanout, so each
        # batch is delivered many times per round.  Digest the batch once
        # per payload object into (border frag rids, absorbable items) and
        # reuse it for every delivery that round.  Keyed by id(), with the
        # payload stored alongside its digest: the reference pins the
        # object for the round (an id can otherwise be reused the moment
        # its owner is collected — e.g. wire-decoded batches with no
        # engine keeping them alive) and the identity check on lookup
        # rejects any stale entry.  Cleared on round change.
        self._batch_cache: Dict[
            int, Tuple[Tuple, Optional[Tuple[Tuple, Tuple]]]
        ] = {}
        self._batch_cache_round: Optional[int] = None

    # ------------------------------------------------------------------
    # Observer hooks
    # ------------------------------------------------------------------

    def on_inject(self, round_no: int, pid: int, rumor: object) -> None:
        if not isinstance(rumor, Rumor):
            return
        self.rumors[rumor.rid] = rumor
        self.sources[rumor.rid] = pid
        self.knowledge[pid].add(("plaintext", rumor.rid))
        self.plaintext_holders[rumor.rid].add(pid)

    def on_deliver(self, round_no: int, message: Message) -> None:
        dst = message.dst
        crossed_border: Set[RumorId] = set()
        payload = message.payload
        if isinstance(payload, DirectAck):
            # Fall through to normal absorption afterwards: a leaky ack's
            # atoms must still feed the plaintext/fragment checks.
            self._check_ack(round_no, message)
        if isinstance(payload, tuple):
            # A gossip batch.  Digest it once per payload object per round
            # (see _digest_batch), then do only per-destination work here.
            src = message.src
            if round_no != self._batch_cache_round:
                self._batch_cache.clear()
                self._batch_cache_round = round_no
            cache = self._batch_cache
            key = id(payload)
            cached = cache.get(key)
            if cached is not None and cached[0] is payload:
                entry = cached[1]
            else:
                entry = self._digest_batch(payload)
                cache[key] = (payload, entry)
            if entry is None:
                # Batch contains non-item entries; take the generic path.
                self._absorb_atoms(
                    round_no, src, dst, reveals_of(payload), crossed_border
                )
            else:
                frag_rids, atom_items = entry
                # Border copies are counted per message even for repeats
                # (Theorem 12 counts message copies, not novel fragments).
                is_border = self._is_border
                for rid in frag_rids:
                    if is_border(rid, src, dst):
                        crossed_border.add(rid)
                seen = self._seen_items[dst]
                for uid, atoms in atom_items:
                    if uid not in seen:
                        seen.add(uid)
                        self._absorb_atoms(round_no, src, dst, atoms, None)
        else:
            self._absorb_atoms(
                round_no, message.src, dst, message.reveals(), crossed_border
            )
        for rid in crossed_border:
            self.border_messages[rid] += 1
            self.total_border_messages += 1

    def _digest_batch(
        self, payload: Tuple
    ) -> Optional[Tuple[Tuple, Tuple]]:
        """Destination-independent digest of one gossip batch.

        Returns ``(frag_rids, atom_items)``: the deduped rids of all
        fragment atoms in the batch (for per-message border accounting) and
        the ``(uid, atoms)`` pairs of items that reveal anything (for
        per-destination absorption).  Returns ``None`` when the batch holds
        entries without a uid — callers then walk the payload generically.
        """
        item_info = self._item_atoms
        inert = self._inert_uids
        frag_rids: Dict = {}
        atom_items: List[Tuple[Tuple, Tuple[Tuple, ...]]] = []
        for item in payload:
            uid = getattr(item, "uid", None)
            if uid is None:
                return None
            if uid in inert:
                continue
            info = item_info.get(uid)
            if info is None:
                atoms = tuple(reveals_of(item))
                if not atoms:
                    inert.add(uid)
                    continue
                info = (
                    atoms,
                    tuple(
                        dict.fromkeys(a[1] for a in atoms if a[0] == "fragment")
                    ),
                )
                item_info[uid] = info
            atom_items.append((uid, info[0]))
            for rid in info[1]:
                frag_rids[rid] = None
        return tuple(frag_rids), tuple(atom_items)

    def _absorb_atoms(
        self,
        round_no: int,
        src: int,
        dst: int,
        atoms,
        crossed_border: Optional[Set[RumorId]],
    ) -> None:
        known = self.knowledge[dst]
        for atom in atoms:
            if atom[0] == "fragment":
                rid = atom[1]
                if (
                    crossed_border is not None
                    and rid not in crossed_border
                    and self._is_border(rid, src, dst)
                ):
                    crossed_border.add(rid)
                if atom in known:
                    continue
                known.add(atom)
                _, rid, partition, group = atom
                self.fragment_holders[(rid, partition, group)].add(dst)
                self._check_fragments(round_no, rid, partition, dst)
            elif atom[0] == "plaintext":
                if atom in known:
                    continue
                known.add(atom)
                rid = atom[1]
                self.plaintext_holders[rid].add(dst)
                self._check_plaintext(round_no, rid, dst)

    # ------------------------------------------------------------------
    # Checks
    # ------------------------------------------------------------------

    def allowed_set(self, rid: RumorId) -> FrozenSet[int]:
        """Processes allowed to know the rumor: ``D`` plus the source."""
        cached = self._allowed_cache.get(rid)
        if cached is not None:
            return cached
        rumor = self.rumors.get(rid)
        if rumor is None:
            return frozenset()
        allowed = set(rumor.dest)
        source = self.sources.get(rid)
        if source is not None:
            allowed.add(source)
        result = frozenset(allowed)
        self._allowed_cache[rid] = result
        return result

    def outsiders(self, rid: RumorId, n: int) -> FrozenSet[int]:
        return frozenset(range(n)) - self.allowed_set(rid)

    def _is_border(self, rid: RumorId, src: int, dst: int) -> bool:
        allowed = self.allowed_set(rid)
        return src in allowed and dst not in allowed

    def _check_ack(self, round_no: int, message: Message) -> None:
        """Direct-send acks must be pure control traffic.

        A well-formed :class:`DirectAck` carries a rumor id and the
        acker's pid only.  If one ever reveals knowledge atoms or carries
        raw bytes (a regression in the reliability layer), that is an
        ``ack_leak`` violation — the hardened direct-send path may add
        redundancy, never knowledge.
        """
        payload = message.payload
        atoms = list(reveals_of(payload))
        carries_bytes = any(
            isinstance(value, (bytes, bytearray))
            for value in vars(payload).values()
        )
        if atoms or carries_bytes:
            self.violations.append(
                Violation(
                    kind="ack_leak",
                    rid=payload.rid,
                    pid=message.dst,
                    round_no=round_no,
                    detail="direct ack carries {}".format(
                        "knowledge atoms" if atoms else "payload bytes"
                    ),
                )
            )

    def _check_plaintext(self, round_no: int, rid: RumorId, pid: int) -> None:
        if rid not in self.rumors:
            return
        if pid not in self.allowed_set(rid):
            self.violations.append(
                Violation(
                    kind="plaintext",
                    rid=rid,
                    pid=pid,
                    round_no=round_no,
                    detail="plaintext delivered outside destination set",
                )
            )

    def _check_fragments(
        self, round_no: int, rid: RumorId, partition: int, pid: int
    ) -> None:
        if rid not in self.rumors or pid in self.allowed_set(rid):
            return
        held = [
            group
            for group in range(self.num_groups)
            if pid in self.fragment_holders.get((rid, partition, group), ())
        ]
        if len(held) >= 2:
            self.violations.append(
                Violation(
                    kind="multiplicity",
                    rid=rid,
                    pid=pid,
                    round_no=round_no,
                    detail="outsider holds groups {} of partition {}".format(
                        held, partition
                    ),
                )
            )
        if len(held) == self.num_groups:
            self.violations.append(
                Violation(
                    kind="reconstruction",
                    rid=rid,
                    pid=pid,
                    round_no=round_no,
                    detail="outsider completed partition {}".format(partition),
                )
            )

    # ------------------------------------------------------------------
    # Coalition analysis (Section 6)
    # ------------------------------------------------------------------

    def holder_map(
        self, rid: RumorId, n: int
    ) -> Dict[Tuple[int, int], Set[int]]:
        """(partition, group) -> outsiders holding that fragment."""
        outsiders = self.outsiders(rid, n)
        holders: Dict[Tuple[int, int], Set[int]] = {}
        for partition in range(self.num_partitions):
            for group in range(self.num_groups):
                pids = self.fragment_holders.get((rid, partition, group), set())
                outside = {p for p in pids if p in outsiders}
                if outside:
                    holders[(partition, group)] = outside
        return holders

    def min_coalition_size(self, rid: RumorId, n: int) -> Optional[int]:
        """Smallest outsider coalition that could reconstruct the rumor.

        ``None`` means no coalition of outsiders can reconstruct at all
        (some fragment of every partition never left the allowed set).
        """
        holders = self.holder_map(rid, n)
        best: Optional[int] = None
        for partition in range(self.num_partitions):
            size = min_cover_size(holders, partition, self.num_groups)
            if size is not None and (best is None or size < best):
                best = size
        return best

    def coalition_reconstructs(
        self, rid: RumorId, coalition: Set[int], n: int
    ) -> Tuple[bool, Optional[int]]:
        """Can this specific coalition pool a complete partition?"""
        outsiders = self.outsiders(rid, n)
        effective = set(coalition) & set(outsiders)
        # Pooled plaintext counts too (a leak, but checked elsewhere).
        for partition in range(self.num_partitions):
            covered = 0
            for group in range(self.num_groups):
                holders = self.fragment_holders.get((rid, partition, group), set())
                if holders & effective:
                    covered += 1
            if covered == self.num_groups:
                return True, partition
        return False, None

    def check_coalitions(
        self,
        strategy: CoalitionStrategy,
        tau: int,
        n: int,
    ) -> List[CoalitionFinding]:
        """Evaluate one coalition per rumor under ``strategy``."""
        findings: List[CoalitionFinding] = []
        for rid in self.rumors:
            outsiders = self.outsiders(rid, n)
            if not outsiders:
                continue
            holders = self.holder_map(rid, n)
            coalition = strategy.select(
                rid,
                outsiders,
                holders,
                self.num_partitions,
                self.num_groups,
                tau,
            )
            reconstructs, partition = self.coalition_reconstructs(rid, coalition, n)
            findings.append(
                CoalitionFinding(
                    rid=rid,
                    coalition=frozenset(coalition),
                    reconstructs=reconstructs,
                    partition=partition,
                )
            )
        return findings

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------

    def violation_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {"plaintext": 0, "reconstruction": 0, "multiplicity": 0}
        for violation in self.violations:
            counts[violation.kind] = counts.get(violation.kind, 0) + 1
        return counts

    def is_clean(self) -> bool:
        """No plaintext, reconstruction or ack-leak violations
        (Definition 2, plus the direct-ack control-traffic invariant)."""
        counts = self.violation_counts()
        return (
            counts["plaintext"] == 0
            and counts["reconstruction"] == 0
            and counts.get("ack_leak", 0) == 0
        )

    def summary(self) -> Dict[str, object]:
        return {
            "rumors": len(self.rumors),
            "violations": self.violation_counts(),
            "border_messages": self.total_border_messages,
        }
