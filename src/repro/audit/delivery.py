"""Quality-of-Delivery auditing (Definition 1, Lemma 4, Lemma 15).

A rumor injected at ``p`` in round ``t`` with deadline ``d`` is
*admissible* for a destination ``q`` iff both ``p`` and ``q`` are
continuously alive over ``[t, t+d]``.  QoD demands that every admissible
(rumor, destination) pair is delivered by round ``t + d`` — with
probability 1, not merely w.h.p.

Deliveries must be recorded the moment they happen (a destination may be
crashed *after* the deadline, wiping its volatile state), so this auditor
doubles as the node-level delivery callback; the harness wires
``auditor.record_delivery`` into :func:`repro.core.congos.congos_factory`
(and the baselines do the same).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.gossip.rumor import Rumor, RumorId
from repro.sim.engine import Engine, SimObserver
from repro.sim.events import EventLog

__all__ = ["DeliveryOutcomeRecord", "QoDReport", "DeliveryAuditor"]


@dataclass(frozen=True)
class DeliveryOutcomeRecord:
    """One (rumor, destination) delivery verdict."""

    rid: RumorId
    pid: int
    admissible: bool
    delivered: bool
    on_time: bool
    correct_data: bool
    latency: Optional[int]  # rounds from injection, when delivered
    path: Optional[str]


@dataclass
class QoDReport:
    """Aggregate Quality-of-Delivery verdict for a run."""

    outcomes: List[DeliveryOutcomeRecord] = field(default_factory=list)

    @property
    def admissible_pairs(self) -> int:
        return sum(1 for o in self.outcomes if o.admissible)

    @property
    def missed(self) -> List[DeliveryOutcomeRecord]:
        """Admissible pairs violating QoD: late, missing or corrupted."""
        return [
            o
            for o in self.outcomes
            if o.admissible and not (o.delivered and o.on_time and o.correct_data)
        ]

    @property
    def satisfied(self) -> bool:
        return not self.missed

    def path_counts(self, admissible_only: bool = False) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for outcome in self.outcomes:
            if admissible_only and not outcome.admissible:
                continue
            if outcome.path is not None:
                counts[outcome.path] = counts.get(outcome.path, 0) + 1
        return counts

    def latencies(self) -> List[int]:
        return [
            o.latency
            for o in self.outcomes
            if o.admissible and o.latency is not None
        ]

    def bonus_deliveries(self) -> int:
        """Inadmissible pairs delivered anyway (allowed, just not owed)."""
        return sum(1 for o in self.outcomes if not o.admissible and o.delivered)

    def summary(self) -> Dict[str, object]:
        latencies = self.latencies()
        return {
            "pairs": len(self.outcomes),
            "admissible": self.admissible_pairs,
            "missed": len(self.missed),
            "satisfied": self.satisfied,
            "bonus_deliveries": self.bonus_deliveries(),
            "mean_latency": (
                round(sum(latencies) / len(latencies), 2) if latencies else None
            ),
            "max_latency": max(latencies) if latencies else None,
            "paths": self.path_counts(),
        }


class DeliveryAuditor(SimObserver):
    """Records injections (as observer) and deliveries (as callback)."""

    def __init__(self) -> None:
        self.rumors: Dict[RumorId, Rumor] = {}
        self.injection_rounds: Dict[RumorId, int] = {}
        self.injection_pids: Dict[RumorId, int] = {}
        self.injection_order: List[RumorId] = []
        # (rid, pid) -> (round delivered, data, path)
        self.deliveries: Dict[Tuple[RumorId, int], Tuple[int, bytes, str]] = {}

    def injected_rid(self, index: int) -> RumorId:
        """The rid of the ``index``-th injection observed (in order)."""
        return self.injection_order[index]

    # -- observer hook --------------------------------------------------

    def on_inject(self, round_no: int, pid: int, rumor: object) -> None:
        if not isinstance(rumor, Rumor):
            return
        self.rumors[rumor.rid] = rumor
        self.injection_rounds[rumor.rid] = round_no
        self.injection_pids[rumor.rid] = pid
        self.injection_order.append(rumor.rid)

    # -- delivery callback (wire into the node factory) -----------------

    def record_delivery(
        self, pid: int, round_no: int, rid: RumorId, data: bytes, path: str
    ) -> None:
        key = (rid, pid)
        if key not in self.deliveries:
            self.deliveries[key] = (round_no, data, path)

    # -- verdicts --------------------------------------------------------

    def admissible_destinations(
        self, rid: RumorId, event_log: EventLog
    ) -> Set[int]:
        """Destinations for which the rumor is admissible (possibly empty)."""
        rumor = self.rumors[rid]
        start = self.injection_rounds[rid]
        end = start + rumor.deadline
        source = self.injection_pids[rid]
        if not event_log.continuously_alive(source, start, end):
            return set()
        return {
            q
            for q in rumor.dest
            if event_log.continuously_alive(q, start, end)
        }

    def report(
        self, engine: Engine, until_round: Optional[int] = None
    ) -> QoDReport:
        """Judge every rumor whose deadline has passed.

        ``until_round`` defaults to the last fully executed round; rumors
        with deadlines beyond it are not judged (still in flight).
        """
        horizon = until_round if until_round is not None else engine.round - 1
        report = QoDReport()
        for rid, rumor in self.rumors.items():
            injected_at = self.injection_rounds[rid]
            deadline_round = injected_at + rumor.deadline
            if deadline_round > horizon:
                continue
            admissible = self.admissible_destinations(rid, engine.event_log)
            for pid in sorted(rumor.dest):
                entry = self.deliveries.get((rid, pid))
                delivered = entry is not None
                on_time = delivered and entry[0] <= deadline_round
                correct = delivered and entry[1] == rumor.data
                report.outcomes.append(
                    DeliveryOutcomeRecord(
                        rid=rid,
                        pid=pid,
                        admissible=pid in admissible,
                        delivered=delivered,
                        on_time=on_time,
                        correct_data=correct,
                        latency=(entry[0] - injected_at) if delivered else None,
                        path=entry[2] if delivered else None,
                    )
                )
        return report
