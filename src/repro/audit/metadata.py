"""Metadata-exposure auditing (Section 7's discussion, quantified).

CONGOS keeps rumor *contents* confidential but, as the paper notes, "various
other metadata is released: processes learn of the existence of rumors,
roughly how many rumors are active, the source of each rumor, a sequence
number of each rumor, and the set of destinations for each rumor".

This auditor measures exactly that: for every process and every rumor, what
metadata did the process observe?  A fragment reveals the rumor's id (hence
source and sequence number) and its destination set (fragments carry ``D``
as routing metadata); a hitSet entry or confirmation record reveals
existence and one (destination, rumor) pair.

Running it with and without the Section-7 mitigations shows their effect:
destination hiding collapses every observed destination set to a singleton,
pseudonymous ids decouple observed sequence numbers from injection counts,
and cover traffic inflates the apparent rumor count.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, FrozenSet, Set

from repro.core.group_distribution import DistributionShare, FragmentDelivery
from repro.core.proxy import ProxyRequest, ProxyShare
from repro.core.splitting import Fragment
from repro.gossip.rumor import Rumor, RumorId
from repro.sim.engine import SimObserver
from repro.sim.messages import Message

__all__ = ["MetadataExposure", "MetadataAuditor"]


@dataclass(frozen=True)
class MetadataExposure:
    """Aggregate exposure over a run."""

    rumors: int
    observer_rumor_pairs: int  # outsiders that learned a rumor exists
    dest_set_disclosures: int  # outsiders that saw a rumor's full dest set
    mean_observers_per_rumor: float
    max_dest_set_size_seen: int

    def disclosure_rate(self) -> float:
        if not self.observer_rumor_pairs:
            return 0.0
        return self.dest_set_disclosures / self.observer_rumor_pairs


class MetadataAuditor(SimObserver):
    """Tracks what each process learns *about* rumors it may not read."""

    def __init__(self) -> None:
        self.rumors: Dict[RumorId, Rumor] = {}
        self.sources: Dict[RumorId, int] = {}
        # pid -> rids whose existence it observed
        self.knows_existence: Dict[int, Set[RumorId]] = defaultdict(set)
        # pid -> rid -> destination set observed from fragment metadata
        self.knows_dest: Dict[int, Dict[RumorId, FrozenSet[int]]] = defaultdict(dict)

    # ------------------------------------------------------------------
    # Observer hooks
    # ------------------------------------------------------------------

    def on_inject(self, round_no: int, pid: int, rumor: object) -> None:
        if isinstance(rumor, Rumor):
            self.rumors[rumor.rid] = rumor
            self.sources[rumor.rid] = pid

    def on_deliver(self, round_no: int, message: Message) -> None:
        self._absorb(message.dst, message.payload)

    def _absorb(self, pid: int, payload: object) -> None:
        if isinstance(payload, Fragment):
            self.knows_existence[pid].add(payload.rid)
            self.knows_dest[pid][payload.rid] = payload.dest
        elif isinstance(payload, (ProxyRequest, FragmentDelivery, ProxyShare)):
            for fragment in payload.fragments:
                self._absorb(pid, fragment)
        elif isinstance(payload, DistributionShare):
            for _, rid in payload.hits:
                self.knows_existence[pid].add(rid)
        elif isinstance(payload, Rumor):
            self.knows_existence[pid].add(payload.rid)
            self.knows_dest[pid][payload.rid] = payload.dest
        elif isinstance(payload, tuple):
            for item in payload:
                inner = getattr(item, "payload", item)
                self._absorb(pid, inner)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def observers_of(self, rid: RumorId) -> Set[int]:
        """Processes outside ``D + {src}`` that know the rumor exists."""
        rumor = self.rumors.get(rid)
        allowed = set(rumor.dest) if rumor else set()
        source = self.sources.get(rid)
        if source is not None:
            allowed.add(source)
        return {
            pid
            for pid, rids in self.knows_existence.items()
            if rid in rids and pid not in allowed
        }

    def dest_disclosed_to(self, rid: RumorId) -> Set[int]:
        """Outsiders that saw the rumor's (full) destination set."""
        return {
            pid
            for pid in self.observers_of(rid)
            if rid in self.knows_dest.get(pid, {})
        }

    def apparent_rumor_count(self, pid: int) -> int:
        """How many rumors does ``pid`` believe exist?  Cover traffic
        inflates this (the observer cannot tell chaff from content)."""
        return len(self.knows_existence.get(pid, ()))

    def exposure(self, n: int) -> MetadataExposure:
        pairs = 0
        disclosures = 0
        per_rumor = []
        max_dest = 0
        for rid in self.rumors:
            observers = self.observers_of(rid)
            per_rumor.append(len(observers))
            pairs += len(observers)
            disclosed = self.dest_disclosed_to(rid)
            disclosures += len(disclosed)
            for pid in disclosed:
                max_dest = max(max_dest, len(self.knows_dest[pid][rid]))
        mean_observers = (
            sum(per_rumor) / len(per_rumor) if per_rumor else 0.0
        )
        return MetadataExposure(
            rumors=len(self.rumors),
            observer_rumor_pairs=pairs,
            dest_set_disclosures=disclosures,
            mean_observers_per_rumor=round(mean_observers, 2),
            max_dest_set_size_seen=max_dest,
        )
