"""Fail-fast invariant monitoring.

The auditors collect evidence and judge at the end of a run; during
protocol development you usually want the opposite — stop the simulation
at the *first* round in which an invariant breaks, with the offending
round number in hand.  :class:`FailFastMonitor` wraps a
:class:`~repro.audit.confidentiality.ConfidentialityAuditor` and raises
:class:`InvariantViolation` from within the engine loop the moment a
violation is recorded.

Given a :class:`~repro.audit.delivery.DeliveryAuditor` as well, the
monitor also covers Quality of Delivery: at the end of the round in which
a rumor's deadline elapses, every admissible destination must already
hold a correct, on-time delivery — a miss raises immediately instead of
surfacing in the end-of-run report.  QoD checking is opt-in because under
the chaos fault plane QoD is *expected* to degrade (the paper's Lemma 4
assumes the reliable network); soak runs keep the confidentiality check
fatal and merely report QoD.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.audit.confidentiality import ConfidentialityAuditor, Violation
from repro.audit.delivery import DeliveryAuditor
from repro.sim.engine import Engine, SimObserver

__all__ = ["InvariantViolation", "FailFastMonitor"]


class InvariantViolation(AssertionError):
    """Raised when a monitored invariant breaks mid-run."""

    def __init__(self, round_no: int, violations: Sequence[Violation]):
        self.round_no = round_no
        self.violations = list(violations)
        kinds = sorted({v.kind for v in self.violations})
        super().__init__(
            "round {}: {} violation(s) [{}], first: {}".format(
                round_no,
                len(self.violations),
                ", ".join(kinds),
                self.violations[0] if self.violations else None,
            )
        )

    def __reduce__(self):
        # Exec-pool workers re-raise this across process boundaries; the
        # default BaseException reduction would replay the formatted
        # message into round_no and crash unpickling.
        return (self.__class__, (self.round_no, self.violations))


class FailFastMonitor(SimObserver):
    """Stops the run at the first confidentiality (or QoD) violation.

    ``strict`` additionally treats multiplicity breaches (an outsider
    holding two fragments of one partition — not yet a reconstruction,
    but always a protocol bug) as fatal.  ``delivery`` opts into QoD
    coverage: rumors are judged in the round their deadline elapses.
    """

    def __init__(
        self,
        auditor: ConfidentialityAuditor,
        strict: bool = True,
        delivery: Optional[DeliveryAuditor] = None,
    ):
        self.auditor = auditor
        self.strict = strict
        self.delivery = delivery
        self._seen = 0
        self._judged: set = set()

    def _fatal(self, violation: Violation) -> bool:
        # ack_leak: the hardened direct-send layer's control messages
        # must never carry knowledge — always fatal, like a plaintext leak.
        if violation.kind in ("plaintext", "reconstruction", "ack_leak"):
            return True
        return self.strict and violation.kind == "multiplicity"

    def on_round_end(self, round_no: int, engine: Engine) -> None:
        new = self.auditor.violations[self._seen:]
        self._seen = len(self.auditor.violations)
        fatal = [v for v in new if self._fatal(v)]
        if fatal:
            raise InvariantViolation(round_no, fatal)
        if self.delivery is not None:
            missed = self._qod_violations(round_no, engine)
            if missed:
                raise InvariantViolation(round_no, missed)

    def _qod_violations(self, round_no: int, engine: Engine) -> Sequence[Violation]:
        """Admissible pairs whose deadline elapsed this round, undelivered."""
        delivery = self.delivery
        violations = []
        for rid, rumor in delivery.rumors.items():
            if rid in self._judged:
                continue
            deadline_round = delivery.injection_rounds[rid] + rumor.deadline
            if deadline_round > round_no:
                continue
            self._judged.add(rid)
            for pid in sorted(
                delivery.admissible_destinations(rid, engine.event_log)
            ):
                entry = delivery.deliveries.get((rid, pid))
                if entry is None:
                    detail = "admissible destination missed deadline {}".format(
                        deadline_round
                    )
                elif entry[0] > deadline_round:
                    detail = "delivered late (round {} > deadline {})".format(
                        entry[0], deadline_round
                    )
                elif entry[1] != rumor.data:
                    detail = "delivered corrupted data"
                else:
                    continue
                violations.append(
                    Violation(
                        kind="qod",
                        rid=rid,
                        pid=pid,
                        round_no=round_no,
                        detail=detail,
                    )
                )
        return violations
