"""Fail-fast invariant monitoring.

The auditors collect evidence and judge at the end of a run; during
protocol development you usually want the opposite — stop the simulation
at the *first* round in which an invariant breaks, with the offending
round number in hand.  :class:`FailFastMonitor` wraps a
:class:`~repro.audit.confidentiality.ConfidentialityAuditor` and raises
:class:`InvariantViolation` from within the engine loop the moment a
violation is recorded.
"""

from __future__ import annotations

from typing import Sequence

from repro.audit.confidentiality import ConfidentialityAuditor, Violation
from repro.sim.engine import Engine, SimObserver

__all__ = ["InvariantViolation", "FailFastMonitor"]


class InvariantViolation(AssertionError):
    """Raised when a monitored invariant breaks mid-run."""

    def __init__(self, round_no: int, violations: Sequence[Violation]):
        self.round_no = round_no
        self.violations = list(violations)
        super().__init__(
            "round {}: {} confidentiality violation(s), first: {}".format(
                round_no,
                len(self.violations),
                self.violations[0] if self.violations else None,
            )
        )


class FailFastMonitor(SimObserver):
    """Stops the run at the first confidentiality violation.

    ``strict`` additionally treats multiplicity breaches (an outsider
    holding two fragments of one partition — not yet a reconstruction,
    but always a protocol bug) as fatal.
    """

    def __init__(
        self,
        auditor: ConfidentialityAuditor,
        strict: bool = True,
    ):
        self.auditor = auditor
        self.strict = strict
        self._seen = 0

    def _fatal(self, violation: Violation) -> bool:
        if violation.kind in ("plaintext", "reconstruction"):
            return True
        return self.strict and violation.kind == "multiplicity"

    def on_round_end(self, round_no: int, engine: Engine) -> None:
        new = self.auditor.violations[self._seen:]
        self._seen = len(self.auditor.violations)
        fatal = [v for v in new if self._fatal(v)]
        if fatal:
            raise InvariantViolation(round_no, fatal)
