"""Single-instance confidential gossip (Section 7: "we believe the same
techniques apply to other gossip variants (e.g., single-instance gossip)").

:func:`confidential_broadcast` is the one-call API: run a fresh CONGOS
deployment for exactly one rumor and return who learned what, when, and
whether anything leaked.  It is the library's "hello world" entry point
and also a genuinely useful primitive — a one-shot confidential multicast
with crash tolerance and an auditable transcript.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from repro.adversary.base import Adversary, ComposedAdversary
from repro.adversary.injection import ScriptedWorkload
from repro.audit.confidentiality import ConfidentialityAuditor
from repro.audit.delivery import DeliveryAuditor
from repro.core.config import CongosParams
from repro.core.congos import build_partition_set, congos_factory
from repro.gossip.rumor import RumorId
from repro.sim.engine import Engine
from repro.sim.rng import derive_rng

__all__ = ["BroadcastResult", "confidential_broadcast"]


@dataclass
class BroadcastResult:
    """Outcome of a one-shot confidential broadcast."""

    rid: RumorId
    delivered: Dict[int, int]  # destination -> delivery round
    paths: Dict[int, str]  # destination -> delivery path
    missed: list  # admissible destinations that were not served (must be [])
    on_time: bool
    leak_free: bool
    min_reconstructing_coalition: Optional[int]
    total_messages: int
    max_messages_per_round: int
    rounds_executed: int

    @property
    def ok(self) -> bool:
        return self.on_time and self.leak_free and not self.missed


def confidential_broadcast(
    n: int,
    source: int,
    data: bytes,
    dest: Iterable[int],
    deadline: int = 128,
    seed: int = 0,
    params: Optional[CongosParams] = None,
    faults: Optional[Adversary] = None,
    warmup: Optional[int] = None,
) -> BroadcastResult:
    """Deliver ``data`` from ``source`` to exactly ``dest``, confidentially.

    Builds an ``n``-process CONGOS deployment, waits ``warmup`` rounds
    (default: one deadline, so the pipeline's uptime requirements are
    met), injects the rumor, runs until its deadline passes, and audits.

    ``faults`` optionally supplies a crash/restart adversary to broadcast
    through; destinations that do not stay continuously alive are excused
    per the admissibility rule, and show up neither in ``delivered`` nor
    in ``missed``.
    """
    destinations = frozenset(dest)
    if not 0 <= source < n:
        raise ValueError("source out of range")
    if not destinations <= frozenset(range(n)):
        raise ValueError("destinations out of range")
    resolved_params = params if params is not None else CongosParams()
    resolved_warmup = warmup if warmup is not None else deadline
    inject_at = max(1, resolved_warmup)
    rounds = inject_at + deadline + 2

    partitions = build_partition_set(n, resolved_params, seed)
    delivery = DeliveryAuditor()
    confidentiality = ConfidentialityAuditor(
        partitions.count, partitions.num_groups
    )
    factory = congos_factory(
        n,
        params=resolved_params,
        seed=seed,
        deliver_callback=delivery.record_delivery,
        partition_set=partitions,
    )
    workload = ScriptedWorkload(
        [(inject_at, source, deadline, destinations, data)],
        derive_rng(seed, "oneshot"),
    )
    parts = [workload]
    if faults is not None:
        parts.append(faults)
    engine = Engine(
        n,
        factory,
        ComposedAdversary(parts),
        observers=[delivery, confidentiality],
        seed=seed,
    )
    engine.run(rounds)

    rid = delivery.injected_rid(0)
    report = delivery.report(engine)
    delivered = {}
    paths = {}
    for q in sorted(destinations):
        entry = delivery.deliveries.get((rid, q))
        if entry is not None:
            delivered[q] = entry[0]
            paths[q] = entry[2]
    missed = [o.pid for o in report.missed]
    return BroadcastResult(
        rid=rid,
        delivered=delivered,
        paths=paths,
        missed=missed,
        on_time=report.satisfied,
        leak_free=confidentiality.is_clean(),
        min_reconstructing_coalition=confidentiality.min_coalition_size(rid, n),
        total_messages=engine.stats.total,
        max_messages_per_round=engine.stats.max_per_round(),
        rounds_executed=engine.rounds_executed,
    )
