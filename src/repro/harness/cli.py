"""Command-line launcher: ``python -m repro.harness.cli <command>``.

Commands
--------
``run``
    Run an audited CONGOS scenario (optionally replicated across seeds,
    in parallel with ``--jobs``) and print its summary.  ``--metrics``
    appends a telemetry-registry dump.
``sweep``
    Run a scenario family over an ``n`` × ``deadline`` grid on the exec
    pool, with a resumable on-disk result cache and machine-readable
    artifacts (``--jobs``, ``--resume``, ``--out``, ``--metrics``).
``trace``
    Run one scenario with full telemetry and stream every event —
    rumor lifecycle stages, proxy crossings, GD fan-out — to a JSONL
    file, then print per-rumor timelines (``--rumor`` replays one).
``profile-sweep``
    Run a sweep with exec-pool profiling and print the per-task
    wall-clock / worker-pid / cache-hit breakdown.
``chaos-soak``
    Sweep the chaos scenario over a drop × delay fault-intensity matrix
    on the exec pool (confidentiality monitored fail-fast in every run),
    write ``BENCH_e15_chaos_matrix.json`` under ``--out``, and with
    ``--trace FILE`` re-run the worst cell with full telemetry so the
    rumor timelines show which injected fault broke a delivery.
``direct-soak``
    Sweep the short-deadline ``direct`` scenario over a drop ×
    default/hardened matrix (E16): the direct-send path in isolation,
    with and without the ack/retransmit/k-copy reliability layer.
    Writes ``BENCH_e16_direct_matrix.json`` under ``--out``.
``targeted-soak``
    Sweep the budgeted rumor-aware adversaries (E19): policy × budget ×
    n × preset, every targeted cell paired with its rumor-blind twin at
    the same budget (the matched-budget oblivious baseline).  Writes
    ``BENCH_e19_targeted_matrix.json`` under ``--out``; exits nonzero on
    any confidentiality violation or budget-ledger mismatch.
``load-soak``
    Sweep the open-workload ``open`` scenario over an arrival-rate ×
    n × preset (× arrival process) matrix (E20): seeded arrival streams
    behind a bounded admission queue, with per-cell SLO metrics
    (delivery-latency p50/p99/p999, shed/fallback rates) and the
    saturation knee per (n, process, preset) series.  Writes
    ``BENCH_e20_open_workload.json`` under ``--out``; exits nonzero on
    any confidentiality violation or shed-rumor leak.
``perf``
    The performance benches (see DESIGN.md Section 8): ``perf micro``
    runs the stable-keyed microbenchmark suite (optionally with
    cProfile hotspot attribution), ``perf scaling`` times the canonical
    steady run across system sizes and writes
    ``BENCH_e17_engine_scaling.json`` with speedups against the pinned
    pre-optimization baseline, and ``perf chaos-scaling`` re-runs the
    chaos drop axis at larger ``n`` (ROADMAP item 2) and writes
    ``BENCH_e17b_chaos_scaling.json`` with the QoD-cliff placement.
``net``
    The sharded multi-process backend (see DESIGN.md Section 9):
    ``net verify`` runs one scenario on both backends and asserts the
    payload digests are bit-identical, and ``net bench`` times the
    in-process engine against the sharded one across system sizes and
    writes ``BENCH_e18_sharded_scaling.json``.
``scenarios``
    List the registered scenario builders and their keyword arguments.
``partitions``
    Inspect the partition family a deployment would use.
``bounds``
    Print the paper's closed-form bounds for given parameters.
"""

from __future__ import annotations

import argparse
import dataclasses
import hashlib
import inspect
import json
import os
import sys
from typing import Dict, List

from repro.analysis.bounds import (
    collusion_lower_bound,
    collusion_upper_bound,
    congos_upper_bound,
    strong_confidentiality_lower_bound,
)
from repro.analysis.sweeps import grid, sweep_congos
from repro.audit.failfast import InvariantViolation
from repro.chaos.direct import (
    BENCH_NAME as DIRECT_BENCH_NAME,
    direct_cells,
    direct_payload,
    run_direct_soak,
)
from repro.chaos.soak import (
    BENCH_NAME as CHAOS_BENCH_NAME,
    cell_spec,
    chaos_cells,
    run_soak,
    soak_payload,
)
from repro.chaos.targeted import (
    BENCH_NAME as TARGETED_BENCH_NAME,
    policy_names,
    run_targeted_soak,
    targeted_cells,
    targeted_payload,
)
from repro.core.config import CongosParams
from repro.core.congos import build_partition_set
from repro.exec.bench_io import profile_payload, sweep_payload, write_bench_json
from repro.exec.cache import ResultCache
from repro.exec.pool import run_specs
from repro.exec.progress import Progress
from repro.exec.results import RunRecord
from repro.exec.tasks import RunSpec, canonical_json
from repro.harness.report import format_kv, format_table
from repro.harness.runner import run_congos_scenario
from repro.harness.scenarios import BUILDERS
from repro.load.arrivals import PROCESSES as ARRIVAL_PROCESSES
from repro.load.soak import (
    BENCH_NAME as LOAD_BENCH_NAME,
    load_cells,
    load_payload,
    run_load_soak,
)
from repro.net.bench import (
    E18_BENCH_NAME,
    run_sharded_scaling,
    sharded_scaling_payload,
)
from repro.obs import JsonlSink, MetricsRegistry, RumorTimeline, Telemetry
from repro.perf import (
    E17B_BENCH_NAME,
    E17_BENCH_NAME,
    case_keys,
    chaos_scaling_payload,
    engine_scaling_payload,
    get_case,
    run_chaos_scaling,
    run_engine_scaling,
    run_suite,
    suite_payload,
)

SCENARIOS = BUILDERS


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Confidential Gossip (ICDCS 2011) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run an audited CONGOS scenario")
    run.add_argument("scenario", choices=sorted(SCENARIOS))
    run.add_argument("-n", type=int, default=16, help="process count")
    run.add_argument("--rounds", type=int, default=400)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--seeds",
        type=int,
        nargs="+",
        default=None,
        metavar="SEED",
        help="replicate the run across these seeds (aggregated table)",
    )
    run.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for multi-seed runs (0 = cpu count)",
    )
    run.add_argument("--deadline", type=int, default=128)
    run.add_argument("--tau", type=int, default=1, help="collusion tolerance")
    run.add_argument("--json", action="store_true", help="emit JSON summary")
    run.add_argument(
        "--metrics",
        action="store_true",
        help="print a telemetry-registry dump after the summary",
    )
    run.add_argument(
        "--backend",
        choices=("inproc", "sharded"),
        default="inproc",
        help="execution backend: one in-process engine, or pids sharded "
        "over worker processes on a real transport (identical results)",
    )
    run.add_argument(
        "--workers",
        type=int,
        default=2,
        help="sharded backend: worker process count",
    )
    run.add_argument(
        "--transport",
        default="tcp",
        help="sharded backend: transport name (tcp, or zmq with the "
        "repro[net] extra installed)",
    )
    run.add_argument(
        "--engine",
        choices=("object", "array"),
        default="object",
        help="round kernel: object (default), or the vectorized array "
        "engine (statistical parity, needs the repro[fast] extra)",
    )

    sweep = sub.add_parser(
        "sweep", help="run a scenario grid on the parallel exec pool"
    )
    sweep.add_argument("scenario", choices=sorted(SCENARIOS))
    sweep.add_argument(
        "-n",
        type=int,
        nargs="+",
        default=[16],
        metavar="N",
        help="process-count axis of the grid",
    )
    sweep.add_argument(
        "--deadline",
        type=int,
        nargs="+",
        default=[128],
        metavar="D",
        help="deadline axis of the grid",
    )
    sweep.add_argument("--rounds", type=int, default=400)
    sweep.add_argument(
        "--seeds", type=int, default=2, help="seed replicates per cell"
    )
    sweep.add_argument(
        "--jobs",
        type=int,
        default=0,
        help="worker processes (0 = cpu count, 1 = serial)",
    )
    sweep.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="artifact directory: result cache, TXT table, BENCH JSON",
    )
    sweep.add_argument(
        "--resume",
        action="store_true",
        help="reuse cached cells under --out instead of re-running them",
    )
    sweep.add_argument("--tau", type=int, default=1)
    sweep.add_argument(
        "--lean", action="store_true", help="use CongosParams.lean()"
    )
    sweep.add_argument("--json", action="store_true", help="emit JSON payload")
    sweep.add_argument(
        "--metrics",
        action="store_true",
        help="print a registry dump aggregated from the run records",
    )

    trace = sub.add_parser(
        "trace", help="run one scenario with full telemetry, stream JSONL"
    )
    trace.add_argument("scenario", choices=sorted(SCENARIOS))
    trace.add_argument("-n", type=int, default=16, help="process count")
    trace.add_argument("--rounds", type=int, default=400)
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument("--deadline", type=int, default=128)
    trace.add_argument("--tau", type=int, default=1)
    trace.add_argument(
        "--lean", action="store_true", help="use CongosParams.lean()"
    )
    trace.add_argument(
        "--out",
        default="events.jsonl",
        metavar="FILE",
        help="JSONL destination (events + one rumor_lifecycle per rumor)",
    )
    trace.add_argument(
        "--rumor",
        default=None,
        metavar="RID",
        help="replay one rumor's timeline (default: the first injected)",
    )
    trace.add_argument(
        "--metrics",
        action="store_true",
        help="print the telemetry-registry dump after the timelines",
    )
    trace.add_argument(
        "--backend",
        choices=("inproc", "sharded"),
        default="inproc",
        help="trace the in-process engine, or the sharded backend with "
        "worker-side capture merged deterministically at the coordinator",
    )
    trace.add_argument(
        "--workers",
        type=int,
        default=2,
        help="sharded backend: worker process count",
    )
    trace.add_argument(
        "--transport",
        default="tcp",
        help="sharded backend: transport name (tcp, or zmq with the "
        "repro[net] extra installed)",
    )

    profile = sub.add_parser(
        "profile-sweep",
        help="run a sweep and print the per-task wall-clock breakdown",
    )
    profile.add_argument("scenario", choices=sorted(SCENARIOS))
    profile.add_argument(
        "-n", type=int, nargs="+", default=[16], metavar="N"
    )
    profile.add_argument(
        "--deadline", type=int, nargs="+", default=[128], metavar="D"
    )
    profile.add_argument("--rounds", type=int, default=400)
    profile.add_argument(
        "--seeds", type=int, default=2, help="seed replicates per cell"
    )
    profile.add_argument(
        "--jobs", type=int, default=0, help="worker processes (0 = cpu count)"
    )
    profile.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="artifact directory: result cache + BENCH profile JSON",
    )
    profile.add_argument(
        "--resume",
        action="store_true",
        help="reuse cached cells under --out instead of re-running them",
    )
    profile.add_argument("--tau", type=int, default=1)
    profile.add_argument(
        "--lean", action="store_true", help="use CongosParams.lean()"
    )
    profile.add_argument("--json", action="store_true", help="emit JSON payload")

    soak = sub.add_parser(
        "chaos-soak",
        help="sweep a fault-intensity matrix with fail-fast invariants",
    )
    soak.add_argument("-n", type=int, default=16, help="process count")
    soak.add_argument("--rounds", type=int, default=200)
    soak.add_argument(
        "--deadline",
        type=int,
        default=64,
        help="rumor deadline: above direct_send_threshold=48 exercises "
        "the full CONGOS pipeline; at or below it rumors take the "
        "direct-send path, which the hardened ack/retransmit/k-copy "
        "knobs protect (see the direct-soak command)",
    )
    soak.add_argument(
        "--drop",
        type=float,
        nargs="+",
        default=[0.0, 0.05, 0.15],
        metavar="P",
        help="drop-probability axis of the matrix",
    )
    soak.add_argument(
        "--delay",
        type=float,
        nargs="+",
        default=[0.0, 0.1],
        metavar="P",
        help="delay-probability axis of the matrix",
    )
    soak.add_argument("--max-delay", type=int, default=4, dest="max_delay")
    soak.add_argument("--duplicate", type=float, default=0.0)
    soak.add_argument("--reorder", type=float, default=0.0)
    soak.add_argument(
        "--partition-period", type=int, default=0, dest="partition_period"
    )
    soak.add_argument(
        "--partition-width", type=int, default=0, dest="partition_width"
    )
    soak.add_argument(
        "--churn",
        type=float,
        default=0.0,
        help="per-round crash probability of a composed CRRI adversary",
    )
    soak.add_argument(
        "--hardened",
        action="store_true",
        help="run with the graceful-degradation knobs (CongosParams.hardened)",
    )
    soak.add_argument(
        "--seeds", type=int, default=2, help="seed replicates per cell"
    )
    soak.add_argument(
        "--jobs",
        type=int,
        default=0,
        help="worker processes (0 = cpu count, 1 = serial)",
    )
    soak.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="artifact directory: result cache, TXT table, BENCH E15 JSON",
    )
    soak.add_argument(
        "--resume",
        action="store_true",
        help="reuse cached cells under --out instead of re-running them",
    )
    soak.add_argument("--json", action="store_true", help="emit JSON payload")
    soak.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="re-run the highest-intensity cell with telemetry to this JSONL",
    )
    soak.add_argument(
        "--policy",
        default=None,
        choices=policy_names(),
        help="layer a budgeted rumor-aware policy over every cell "
        "(routes through the 'targeted' builder; see targeted-soak for "
        "the full E19 matrix)",
    )
    soak.add_argument(
        "--per-round",
        type=int,
        default=4,
        dest="per_round",
        help="targeted budget per destination per round (--policy only)",
    )
    soak.add_argument(
        "--total",
        type=int,
        default=64,
        help="targeted budget per destination per run (--policy only)",
    )
    soak.add_argument(
        "--blind",
        action="store_true",
        help="rumor-blind variant of --policy (matched-budget baseline)",
    )

    targeted = sub.add_parser(
        "targeted-soak",
        help="sweep the budgeted rumor-aware adversary matrix (E19)",
    )
    targeted.add_argument("-n", type=int, nargs="+", default=[64], metavar="N")
    # 96 rounds fits the full injection window for deadline 64 (inject
    # in [24, 28), last expiry 92) while keeping the concurrent-rumor
    # population — the dominant cost at n=256 — small.
    targeted.add_argument("--rounds", type=int, default=96)
    targeted.add_argument(
        "--policies",
        nargs="+",
        default=None,
        choices=policy_names(),
        metavar="POLICY",
        help="policies to sweep (default: all registered)",
    )
    targeted.add_argument(
        "--budgets",
        nargs="+",
        default=["4:64", "8:128"],
        metavar="PER_ROUND:TOTAL",
        help="per-destination budget pairs, e.g. 4:64 8:128",
    )
    targeted.add_argument(
        "--kind",
        default="drop",
        choices=["drop", "delay"],
        help="what a spent budget unit does",
    )
    targeted.add_argument(
        "--window",
        type=int,
        default=8,
        help="deadline-chaser grace rounds after injection",
    )
    targeted.add_argument(
        "--drop",
        type=float,
        default=0.0,
        help="background oblivious drop probability composed under the "
        "targeted layer",
    )
    targeted.add_argument(
        "--presets",
        nargs="+",
        default=["default", "hardened"],
        choices=["default", "hardened"],
        help="CongosParams presets to sweep",
    )
    targeted.add_argument(
        "--aware-only",
        action="store_true",
        dest="aware_only",
        help="skip the rumor-blind matched-budget baseline cells",
    )
    targeted.add_argument(
        "--seeds", type=int, default=2, help="seed replicates per cell"
    )
    targeted.add_argument(
        "--jobs",
        type=int,
        default=0,
        help="worker processes (0 = cpu count, 1 = serial)",
    )
    targeted.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="artifact directory: result cache, TXT table, BENCH E19 JSON",
    )
    targeted.add_argument(
        "--resume",
        action="store_true",
        help="reuse cached cells under --out instead of re-running them",
    )
    targeted.add_argument(
        "--json", action="store_true", help="emit JSON payload"
    )

    load = sub.add_parser(
        "load-soak",
        help="sweep the open workload over an arrival-rate x n x preset "
        "matrix (E20)",
    )
    load.add_argument("-n", type=int, nargs="+", default=[64], metavar="N")
    # 200 rounds leaves a 50-round arrival window for deadline 64 with
    # the default wait cap (32): warmup 50, arrivals [50, 100), queue
    # drain by 132, last expiry 196.
    load.add_argument("--rounds", type=int, default=200)
    load.add_argument(
        "--rates",
        type=float,
        nargs="+",
        default=[1.0, 2.0, 4.0, 8.0],
        metavar="RATE",
        help="peak mean arrivals per round (the swept load axis)",
    )
    load.add_argument(
        "--processes",
        nargs="+",
        default=["poisson"],
        choices=list(ARRIVAL_PROCESSES),
        metavar="PROCESS",
        help="arrival processes to sweep (poisson/bursty/diurnal)",
    )
    load.add_argument(
        "--presets",
        nargs="+",
        default=["default"],
        choices=CongosParams.preset_names(),
        help="CongosParams presets to sweep",
    )
    load.add_argument(
        "--engines",
        nargs="+",
        default=["object"],
        choices=("object", "array"),
        metavar="ENGINE",
        help="round kernels to sweep (array needs the repro[fast] extra)",
    )
    load.add_argument(
        "--deadline",
        type=int,
        default=64,
        help="rumor deadline (above direct_send_threshold=48 exercises "
        "the full pipeline)",
    )
    load.add_argument(
        "--dest-size", type=int, default=3, dest="dest_size",
        help="destination-set size per rumor",
    )
    load.add_argument(
        "--zipf-groups",
        type=int,
        default=0,
        dest="zipf_groups",
        help="hotspot destination blocks (0 = uniform destinations)",
    )
    load.add_argument(
        "--zipf-s", type=float, default=1.1, dest="zipf_s",
        help="Zipf exponent over the hotspot blocks",
    )
    load.add_argument(
        "--queue-cap",
        type=int,
        default=256,
        dest="queue_cap",
        help="admission queue bound (arrivals beyond it are shed)",
    )
    load.add_argument(
        "--max-wait",
        type=int,
        default=None,
        dest="max_wait",
        help="shed queued arrivals waiting longer than this "
        "(default: half the deadline)",
    )
    load.add_argument(
        "--per-round",
        type=int,
        default=None,
        dest="per_round",
        help="per-round injection budget "
        "(default: CongosParams.injection_budget(n))",
    )
    load.add_argument(
        "--seeds", type=int, default=2, help="seed replicates per cell"
    )
    load.add_argument(
        "--jobs",
        type=int,
        default=0,
        help="worker processes (0 = cpu count, 1 = serial)",
    )
    load.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="artifact directory: result cache, TXT table, BENCH E20 JSON",
    )
    load.add_argument(
        "--resume",
        action="store_true",
        help="reuse cached cells under --out instead of re-running them",
    )
    load.add_argument(
        "--json", action="store_true", help="emit JSON payload"
    )

    direct = sub.add_parser(
        "direct-soak",
        help="sweep the direct-send path over a drop x hardened matrix (E16)",
    )
    direct.add_argument("-n", type=int, default=16, help="process count")
    direct.add_argument("--rounds", type=int, default=200)
    direct.add_argument(
        "--deadline",
        type=int,
        default=32,
        help="rumor deadline; must stay at or below "
        "direct_send_threshold=48 so only the direct-send path runs",
    )
    direct.add_argument(
        "--drop",
        type=float,
        nargs="+",
        default=[0.0, 0.1, 0.3],
        metavar="P",
        help="drop-probability axis of the matrix",
    )
    direct.add_argument(
        "--delay", type=float, default=0.0, help="delay probability (fixed)"
    )
    direct.add_argument("--max-delay", type=int, default=4, dest="max_delay")
    direct.add_argument("--duplicate", type=float, default=0.0)
    direct.add_argument("--reorder", type=float, default=0.0)
    direct.add_argument(
        "--seeds", type=int, default=2, help="seed replicates per cell"
    )
    direct.add_argument(
        "--jobs",
        type=int,
        default=0,
        help="worker processes (0 = cpu count, 1 = serial)",
    )
    direct.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="artifact directory: result cache, TXT table, BENCH E16 JSON",
    )
    direct.add_argument(
        "--resume",
        action="store_true",
        help="reuse cached cells under --out instead of re-running them",
    )
    direct.add_argument("--json", action="store_true", help="emit JSON payload")

    perf = sub.add_parser(
        "perf",
        help="microbenchmarks and n-scaling benches (E17/E17b)",
    )
    perf.add_argument(
        "suite",
        choices=("micro", "scaling", "chaos-scaling"),
        help="micro = PerfCase registry; scaling = E17 engine scaling; "
        "chaos-scaling = E17b chaos matrix at larger n",
    )
    perf.add_argument(
        "--case",
        action="append",
        default=None,
        metavar="KEY",
        help="micro: run only this case (repeatable; default all)",
    )
    perf.add_argument(
        "--repeats", type=int, default=5, help="timed samples per case"
    )
    perf.add_argument(
        "--warmup", type=int, default=1, help="discarded warmup runs per case"
    )
    perf.add_argument(
        "--profile",
        action="store_true",
        help="micro: attach cProfile hotspot attribution per case",
    )
    perf.add_argument(
        "--ns",
        type=int,
        nargs="+",
        default=None,
        metavar="N",
        help="system sizes (default: 16 64 256 for scaling, 64 256 for "
        "chaos-scaling)",
    )
    perf.add_argument("--rounds", type=int, default=120)
    perf.add_argument("--deadline", type=int, default=64)
    perf.add_argument(
        "--engine",
        nargs="+",
        default=None,
        choices=("object", "array"),
        metavar="ENGINE",
        help="scaling: round kernels to time (default object; pass both "
        "to record the array-vs-object speedup in one artifact)",
    )
    perf.add_argument(
        "--drop",
        type=float,
        nargs="+",
        default=[0.0, 0.15, 0.3, 0.5],
        metavar="P",
        help="chaos-scaling: drop-probability axis",
    )
    perf.add_argument(
        "--delay",
        type=float,
        nargs="+",
        default=[0.1],
        metavar="P",
        help="chaos-scaling: delay-probability axis",
    )
    perf.add_argument(
        "--seeds", type=int, default=2, help="chaos-scaling: seed replicates"
    )
    perf.add_argument(
        "--jobs",
        type=int,
        default=0,
        help="chaos-scaling: worker processes (0 = cpu count, 1 = serial)",
    )
    perf.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="artifact directory for the BENCH JSON (scaling suites)",
    )
    perf.add_argument(
        "--resume",
        action="store_true",
        help="chaos-scaling: reuse cached cells under --out",
    )
    perf.add_argument("--json", action="store_true", help="emit JSON payload")

    net = sub.add_parser(
        "net",
        help="sharded multi-process backend: digest verification and the "
        "E18 scaling bench",
    )
    net.add_argument(
        "suite",
        choices=("verify", "bench"),
        help="verify = run one scenario on both backends and compare "
        "payload digests; bench = E18 inproc-vs-sharded scaling",
    )
    net.add_argument(
        "--scenario",
        choices=sorted(SCENARIOS),
        default="steady",
        help="verify: scenario builder to compare",
    )
    net.add_argument("-n", type=int, default=16, help="verify: process count")
    net.add_argument("--rounds", type=int, default=96)
    net.add_argument("--seed", type=int, default=0)
    net.add_argument("--deadline", type=int, default=64)
    net.add_argument("--tau", type=int, default=1)
    net.add_argument(
        "--lean", action="store_true", help="use CongosParams.lean()"
    )
    net.add_argument(
        "--workers", type=int, default=2, help="worker process count"
    )
    net.add_argument(
        "--transport",
        default="tcp",
        help="transport name (tcp, or zmq with the repro[net] extra)",
    )
    net.add_argument(
        "--ns",
        type=int,
        nargs="+",
        default=None,
        metavar="N",
        help="bench: system sizes (default: 64 256)",
    )
    net.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="bench: artifact directory for BENCH_e18_sharded_scaling.json",
    )
    net.add_argument("--json", action="store_true", help="emit JSON payload")

    sub.add_parser("scenarios", help="list registered scenario builders")

    partitions = sub.add_parser("partitions", help="inspect a partition family")
    partitions.add_argument("-n", type=int, default=16)
    partitions.add_argument("--tau", type=int, default=1)
    partitions.add_argument("--seed", type=int, default=0)

    bounds = sub.add_parser("bounds", help="print the paper's bounds")
    bounds.add_argument("-n", type=int, default=64)
    bounds.add_argument("--dmin", type=int, default=128)
    bounds.add_argument("--dmax", type=int, default=128)
    bounds.add_argument("--tau", type=int, default=1)
    return parser


def _scenario_kwargs(args: argparse.Namespace) -> Dict[str, object]:
    """Map CLI flags onto the builder's kwargs (axis-name quirks included)."""
    kwargs: Dict[str, object] = {"n": args.n, "rounds": args.rounds}
    if args.scenario == "theorem1":
        kwargs["dmax"] = args.deadline
    elif args.scenario == "collusion":
        kwargs["tau"] = args.tau
        kwargs["deadline"] = args.deadline
    else:
        kwargs["deadline"] = args.deadline
    return kwargs


def _registry_from_records(records) -> MetricsRegistry:
    """Aggregate a parent-side registry from RunRecords.

    Worker registries do not cross the process boundary; what the pool
    hands back are slim records, so the sweep-level ``--metrics`` view is
    rebuilt from those.
    """
    registry = MetricsRegistry()
    for record in records:
        registry.counter("exec.runs").inc()
        if record.cache_hit:
            registry.counter("exec.cache_hits").inc()
        elif record.wall_time > 0:
            registry.histogram("exec.task_seconds").observe(record.wall_time)
        registry.counter("messages.total").inc(record.total)
        registry.counter("messages.filtered").inc(record.filtered)
        for service, count in sorted(record.by_service.items()):
            registry.counter("messages.by_service", service=service).inc(count)
        for path, count in sorted(record.paths.items()):
            registry.counter("deliveries.by_path", path=path).inc(count)
        registry.counter("rumors.injected").inc(record.rumors_injected)
    return registry


def cmd_run(args: argparse.Namespace) -> int:
    params = CongosParams(tau=args.tau) if args.tau > 1 else CongosParams()
    kwargs = _scenario_kwargs(args)
    if args.seeds is not None and len(args.seeds) > 1:
        return _run_multi_seed(args, params, kwargs)
    seed = args.seeds[0] if args.seeds else args.seed
    builder = SCENARIOS[args.scenario]
    telemetry = Telemetry() if args.metrics else None
    scenario = builder(seed=seed, params=params, **kwargs)
    if args.backend != "inproc":
        scenario = dataclasses.replace(
            scenario,
            backend=args.backend,
            net={"workers": args.workers, "transport": args.transport},
        )
    if args.engine != "object":
        scenario = dataclasses.replace(scenario, engine=args.engine)
    result = run_congos_scenario(scenario, telemetry=telemetry)
    summary = result.summary()
    if args.json:
        if telemetry is not None:
            summary["metrics"] = telemetry.metrics.dump()
        print(json.dumps(summary, indent=2, default=str))
    else:
        print(format_kv(sorted(summary["messages"].items()), title="Messages"))
        print()
        print(format_kv(sorted(summary["qod"].items()), title="Quality of Delivery"))
        print()
        print(
            format_kv(
                sorted(summary["confidentiality"].items()), title="Confidentiality"
            )
        )
        print()
        print(format_kv(sorted(summary["faults"].items()), title="CRRI events"))
        if telemetry is not None:
            print()
            print("Telemetry registry")
            print(telemetry.metrics.render())
    ok = result.qod.satisfied and result.confidentiality.is_clean()
    return 0 if ok else 1


def _run_multi_seed(
    args: argparse.Namespace, params: CongosParams, kwargs: Dict[str, object]
) -> int:
    """Replicate one scenario across seeds on the exec pool."""
    net = (
        {"workers": args.workers, "transport": args.transport}
        if args.backend != "inproc"
        else None
    )
    specs = [
        RunSpec.make(
            args.scenario,
            seed=seed,
            params=params,
            backend=args.backend,
            net=net,
            engine=args.engine,
            **kwargs,
        )
        for seed in args.seeds
    ]
    records = run_specs(specs, jobs=args.jobs)
    if args.json:
        print(json.dumps([record.to_dict() for record in records], indent=2))
    else:
        rows: List[List[object]] = [
            [
                record.seed,
                record.peak,
                record.total,
                record.rumors_injected,
                record.qod_satisfied,
                record.clean,
            ]
            for record in records
        ]
        print(
            format_table(
                ["seed", "peak", "total msgs", "rumors", "qod", "clean"],
                rows,
                title="{} across {} seeds".format(args.scenario, len(records)),
            )
        )
        if args.metrics:
            print()
            print("Telemetry registry (aggregated from {} records)".format(
                len(records)
            ))
            print(_registry_from_records(records).render())
    ok = all(r.qod_satisfied for r in records) and all(r.clean for r in records)
    return 0 if ok else 1


def cmd_sweep(args: argparse.Namespace) -> int:
    if args.resume and not args.out:
        print("--resume needs --out (the cache lives there)", file=sys.stderr)
        return 2
    axis = "dmax" if args.scenario == "theorem1" else "deadline"
    cells = grid(**{"n": args.n, axis: args.deadline})
    if args.lean:
        params = CongosParams.lean(tau=args.tau)
    elif args.tau > 1:
        params = CongosParams(tau=args.tau)
    else:
        params = CongosParams()
    fixed: Dict[str, object] = {"rounds": args.rounds, "params": params}
    if args.scenario == "collusion":
        fixed["tau"] = args.tau
    cache = None
    if args.out:
        cache = ResultCache(os.path.join(args.out, "cache"))
    total = len(cells) * args.seeds
    progress = Progress.for_tty(total, label="sweep {}".format(args.scenario))
    try:
        result = sweep_congos(
            args.scenario,
            cells,
            seeds=range(args.seeds),
            jobs=args.jobs,
            cache=cache,
            resume=args.resume,
            progress=progress,
            **fixed,
        )
    except KeyboardInterrupt:
        print(
            "\ninterrupted after {} of {} tasks{}".format(
                progress.done,
                total,
                " — rerun with --resume to continue" if args.out else "",
            ),
            file=sys.stderr,
        )
        return 130
    progress.finish()
    table = format_table(
        result.table_headers(),
        result.table_rows(),
        title="sweep {} ({} cells x {} seeds)".format(
            args.scenario, len(cells), args.seeds
        ),
    )
    flat_records = [record for cell in result.cells for record in cell.runs]
    payload = sweep_payload(result)
    payload["scenario"] = args.scenario
    payload["seeds"] = args.seeds
    payload["elapsed_seconds"] = round(progress.elapsed(), 3)
    payload["executed_tasks"] = progress.executed
    payload["cached_tasks"] = progress.cached
    payload["profile"] = profile_payload(flat_records)
    if args.json:
        print(json.dumps(payload, indent=2, default=str))
    else:
        print(table)
        if args.metrics:
            print()
            print("Telemetry registry (aggregated from {} records)".format(
                len(flat_records)
            ))
            print(_registry_from_records(flat_records).render())
    if args.out:
        name = "{}_sweep".format(args.scenario)
        with open(
            os.path.join(args.out, "{}.txt".format(name)), "w", encoding="utf-8"
        ) as handle:
            handle.write(table + "\n")
        artifact = write_bench_json(name, payload, results_dir=args.out)
        print("artifacts: {}".format(artifact), file=sys.stderr)
    return 0 if result.all_satisfied() and result.all_clean() else 1


def _trace_params(args: argparse.Namespace) -> CongosParams:
    if args.lean:
        return CongosParams.lean(tau=args.tau)
    if args.tau > 1:
        return CongosParams(tau=args.tau)
    return CongosParams()


def cmd_trace(args: argparse.Namespace) -> int:
    params = _trace_params(args)
    kwargs = _scenario_kwargs(args)
    builder = SCENARIOS[args.scenario]
    scenario = builder(seed=args.seed, params=params, **kwargs)
    if args.backend != "inproc":
        scenario = dataclasses.replace(
            scenario,
            backend=args.backend,
            net={"workers": args.workers, "transport": args.transport},
        )
    timeline = RumorTimeline()
    with JsonlSink(path=args.out) as sink:
        telemetry = Telemetry(sinks=[sink])
        telemetry.subscribe(timeline)
        result = run_congos_scenario(
            scenario,
            observers=[timeline],
            telemetry=telemetry,
        )
        timeline.export(sink)
        emitted = sink.emitted
    lifecycles = timeline.lifecycles()
    rows: List[List[object]] = [
        [
            rec.rid,
            rec.src,
            rec.inject_round,
            len(rec.dest),
            rec.fragments,
            rec.delivered_count,
            rec.confirmed_round if rec.confirmed_round is not None else "-",
            rec.fallback_round if rec.fallback_round is not None else "-",
            (max(rec.latencies()) if rec.latencies() else "-"),
        ]
        for rec in lifecycles
    ]
    print(
        format_table(
            [
                "rumor",
                "src",
                "inject",
                "|D|",
                "frags",
                "delivered",
                "confirm",
                "fallback",
                "max lat",
            ],
            rows,
            title="trace {} [{} backend]: {} rumors, {} events -> {}".format(
                args.scenario, args.backend, len(lifecycles), emitted, args.out
            ),
        )
    )
    replay_rid = args.rumor if args.rumor is not None else (
        lifecycles[0].rid if lifecycles else None
    )
    if replay_rid is not None:
        print()
        print("timeline of rumor {}".format(replay_rid))
        for line in timeline.replay(replay_rid):
            print("  " + line)
    if args.metrics:
        print()
        print("Telemetry registry")
        print(telemetry.metrics.render())
    ok = result.qod.satisfied and result.confidentiality.is_clean()
    return 0 if ok else 1


def cmd_profile_sweep(args: argparse.Namespace) -> int:
    if args.resume and not args.out:
        print("--resume needs --out (the cache lives there)", file=sys.stderr)
        return 2
    axis = "dmax" if args.scenario == "theorem1" else "deadline"
    cells = grid(**{"n": args.n, axis: args.deadline})
    if args.lean:
        params = CongosParams.lean(tau=args.tau)
    elif args.tau > 1:
        params = CongosParams(tau=args.tau)
    else:
        params = CongosParams()
    fixed: Dict[str, object] = {"rounds": args.rounds, "params": params}
    if args.scenario == "collusion":
        fixed["tau"] = args.tau
    cache = None
    if args.out:
        cache = ResultCache(os.path.join(args.out, "cache"))
    total = len(cells) * args.seeds
    progress = Progress.for_tty(
        total, label="profile {}".format(args.scenario)
    )
    result = sweep_congos(
        args.scenario,
        cells,
        seeds=range(args.seeds),
        jobs=args.jobs,
        cache=cache,
        resume=args.resume,
        progress=progress,
        **fixed,
    )
    progress.finish()
    axis_names = sorted(result.cells[0].cell) if result.cells else []
    rows = []
    flat_records = []
    for cell in result.cells:
        for record in cell.runs:
            flat_records.append(record)
            rows.append(
                [
                    *[cell.cell[key] for key in axis_names],
                    record.seed,
                    round(record.wall_time, 3),
                    record.worker_pid if record.worker_pid is not None else "-",
                    "yes" if record.cache_hit else "no",
                ]
            )
    profile = profile_payload(flat_records)
    elapsed = progress.elapsed()
    speedup = (
        profile["task_seconds_total"] / elapsed if elapsed > 0 else 0.0
    )
    payload: Dict[str, object] = {
        "scenario": args.scenario,
        "seeds": args.seeds,
        "jobs": args.jobs,
        "elapsed_seconds": round(elapsed, 3),
        "speedup": round(speedup, 2),
        "profile": profile,
    }
    if args.json:
        print(json.dumps(payload, indent=2, default=str))
    else:
        print(
            format_table(
                [*axis_names, "seed", "wall s", "worker pid", "cached"],
                rows,
                title="profile-sweep {} ({} tasks)".format(
                    args.scenario, len(rows)
                ),
            )
        )
        print()
        print(
            format_kv(
                [
                    ("tasks", profile["tasks"]),
                    ("executed", profile["executed"]),
                    ("cache hits", profile["cache_hits"]),
                    ("workers", profile["workers"]),
                    ("task seconds (total)", profile["task_seconds_total"]),
                    ("task seconds (mean)", profile["task_seconds_mean"]),
                    ("task seconds (max)", profile["task_seconds_max"]),
                    ("elapsed seconds", round(elapsed, 3)),
                    ("parallel speedup", round(speedup, 2)),
                ],
                title="Exec-pool profile",
            )
        )
    if args.out:
        name = "{}_profile".format(args.scenario)
        artifact = write_bench_json(name, payload, results_dir=args.out)
        print("artifacts: {}".format(artifact), file=sys.stderr)
    return 0 if result.all_satisfied() and result.all_clean() else 1


def cmd_chaos_soak(args: argparse.Namespace) -> int:
    if args.resume and not args.out:
        print("--resume needs --out (the cache lives there)", file=sys.stderr)
        return 2
    cells = chaos_cells(args.drop, args.delay)
    fixed: Dict[str, object] = {
        "n": args.n,
        "rounds": args.rounds,
        "deadline": args.deadline,
        "max_delay": args.max_delay,
        "duplicate": args.duplicate,
        "reorder": args.reorder,
        "partition_period": args.partition_period,
        "partition_width": args.partition_width,
        "churn": args.churn,
        "hardened": args.hardened,
    }
    builder = "chaos"
    if args.policy is not None:
        # Same intensity matrix, with a budgeted rumor-aware policy
        # layered over every cell's oblivious spec.
        builder = "targeted"
        fixed.update(
            policy=args.policy,
            per_round=args.per_round,
            total=args.total,
            blind=args.blind,
        )
        # The targeted builder picks its own deadline default per policy.
        if args.deadline == 64:
            del fixed["deadline"]
    cache = None
    if args.out:
        cache = ResultCache(os.path.join(args.out, "cache"))
    total = len(cells) * args.seeds
    progress = Progress.for_tty(total, label="chaos soak")
    try:
        result = run_soak(
            cells,
            seeds=range(args.seeds),
            jobs=args.jobs,
            cache=cache,
            resume=args.resume,
            progress=progress,
            builder=builder,
            **fixed,
        )
    except InvariantViolation as violation:
        # A worker's FailFastMonitor tripped: loss must degrade delivery,
        # never confidentiality — this is the soak's red alert.
        print("\nINVARIANT VIOLATION: {}".format(violation), file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        print(
            "\ninterrupted after {} of {} tasks{}".format(
                progress.done,
                total,
                " — rerun with --resume to continue" if args.out else "",
            ),
            file=sys.stderr,
        )
        return 130
    progress.finish()
    payload = soak_payload(result, fixed)
    payload["scenario"] = builder
    payload["seeds"] = args.seeds
    payload["fixed"] = dict(fixed)
    # Nondeterministic timing lives under one key so artifact comparisons
    # can drop it (and "created") and assert the rest byte-identical.
    flat_records = [record for cell in result.cells for record in cell.runs]
    payload["profile"] = profile_payload(flat_records)
    payload["profile"]["elapsed_seconds"] = round(progress.elapsed(), 3)
    rows: List[List[object]] = []
    for entry in payload["cells"]:
        faults = entry["faults"]
        rows.append(
            [
                entry["cell"]["drop"],
                entry["cell"]["delay"],
                entry["intensity"],
                sum(faults.values()),
                entry["delivery_rate"]
                if entry["delivery_rate"] is not None
                else "-",
                entry["fallback_rate"],
                entry["qod_satisfied"],
                entry["clean"],
            ]
        )
    table = format_table(
        [
            "drop",
            "delay",
            "intensity",
            "faults",
            "delivery",
            "fallback",
            "qod",
            "clean",
        ],
        rows,
        title="chaos soak ({} cells x {} seeds{}{})".format(
            len(cells),
            args.seeds,
            ", hardened" if args.hardened else "",
            ", policy " + args.policy if args.policy else "",
        ),
    )
    if args.json:
        print(json.dumps(payload, indent=2, default=str))
    else:
        print(table)
    if args.out:
        with open(
            os.path.join(args.out, "chaos_soak.txt"), "w", encoding="utf-8"
        ) as handle:
            handle.write(table + "\n")
        artifact = write_bench_json(
            CHAOS_BENCH_NAME, payload, results_dir=args.out
        )
        print("artifacts: {}".format(artifact), file=sys.stderr)
    if args.trace:
        _trace_worst_cell(args, result, fixed, builder)
    return 0 if result.all_clean() else 1


def _trace_worst_cell(
    args: argparse.Namespace,
    result,
    fixed: Dict[str, object],
    builder: str = "chaos",
) -> None:
    """Re-run the highest-intensity cell in-process with full telemetry."""
    worst = max(
        result.cells,
        key=lambda cell: (
            cell_spec(cell.cell, fixed).intensity(),
            sorted(cell.cell.items()),
        ),
    )
    timeline = RumorTimeline()
    with JsonlSink(path=args.trace) as sink:
        telemetry = Telemetry(sinks=[sink])
        telemetry.subscribe(timeline)
        scenario = SCENARIOS[builder](seed=0, **fixed, **worst.cell)
        run_congos_scenario(
            scenario, observers=[timeline], telemetry=telemetry
        )
        timeline.export(sink)
        emitted = sink.emitted
    print(
        "trace of worst cell {}: {} events -> {}".format(
            worst.cell, emitted, args.trace
        )
    )
    lifecycles = timeline.lifecycles()
    faulted = [record for record in lifecycles if record.faults]
    target = faulted[0] if faulted else (lifecycles[0] if lifecycles else None)
    if target is not None:
        print()
        print(
            "timeline of rumor {} ({} faults hit its messages)".format(
                target.rid, len(target.faults)
            )
        )
        for line in timeline.replay(target.rid):
            print("  " + line)


def cmd_direct_soak(args: argparse.Namespace) -> int:
    if args.resume and not args.out:
        print("--resume needs --out (the cache lives there)", file=sys.stderr)
        return 2
    cells = direct_cells(args.drop)
    fixed: Dict[str, object] = {
        "n": args.n,
        "rounds": args.rounds,
        "deadline": args.deadline,
        "delay": args.delay,
        "max_delay": args.max_delay,
        "duplicate": args.duplicate,
        "reorder": args.reorder,
    }
    cache = None
    if args.out:
        cache = ResultCache(os.path.join(args.out, "cache"))
    total = len(cells) * args.seeds
    progress = Progress.for_tty(total, label="direct soak")
    try:
        result = run_direct_soak(
            cells,
            seeds=range(args.seeds),
            jobs=args.jobs,
            cache=cache,
            resume=args.resume,
            progress=progress,
            **fixed,
        )
    except InvariantViolation as violation:
        # Red alert: the reliability layer added redundancy AND knowledge.
        print("\nINVARIANT VIOLATION: {}".format(violation), file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        print(
            "\ninterrupted after {} of {} tasks{}".format(
                progress.done,
                total,
                " — rerun with --resume to continue" if args.out else "",
            ),
            file=sys.stderr,
        )
        return 130
    progress.finish()
    payload = direct_payload(result, fixed)
    payload["scenario"] = "direct"
    payload["seeds"] = args.seeds
    payload["fixed"] = dict(fixed)
    flat_records = [record for cell in result.cells for record in cell.runs]
    payload["profile"] = profile_payload(flat_records)
    payload["profile"]["elapsed_seconds"] = round(progress.elapsed(), 3)
    rows: List[List[object]] = []
    for entry in payload["cells"]:
        faults = entry["faults"]
        rows.append(
            [
                entry["cell"]["drop"],
                "hardened" if entry["cell"]["hardened"] else "default",
                sum(faults.values()),
                entry["delivery_rate"]
                if entry["delivery_rate"] is not None
                else "-",
                entry["qod_satisfied"],
                entry["clean"],
            ]
        )
    table = format_table(
        ["drop", "mode", "faults", "delivery", "qod", "clean"],
        rows,
        title="direct soak ({} cells x {} seeds)".format(
            len(cells), args.seeds
        ),
    )
    if args.json:
        print(json.dumps(payload, indent=2, default=str))
    else:
        print(table)
    if args.out:
        with open(
            os.path.join(args.out, "direct_soak.txt"), "w", encoding="utf-8"
        ) as handle:
            handle.write(table + "\n")
        artifact = write_bench_json(
            DIRECT_BENCH_NAME, payload, results_dir=args.out
        )
        print("artifacts: {}".format(artifact), file=sys.stderr)
    return 0 if result.all_clean() else 1


def _parse_budgets(specs: List[str]) -> List[tuple]:
    budgets = []
    for spec in specs:
        try:
            per_round, total = spec.split(":", 1)
            budgets.append((int(per_round), int(total)))
        except ValueError:
            raise SystemExit(
                "bad --budgets entry {!r}: expected PER_ROUND:TOTAL, "
                "e.g. 4:64".format(spec)
            )
    return budgets


def cmd_targeted_soak(args: argparse.Namespace) -> int:
    if args.resume and not args.out:
        print("--resume needs --out (the cache lives there)", file=sys.stderr)
        return 2
    policies = args.policies if args.policies else policy_names()
    budgets = _parse_budgets(args.budgets)
    hardened = [preset == "hardened" for preset in args.presets]
    blind = (False,) if args.aware_only else (False, True)
    cells = targeted_cells(
        policies, budgets, args.n, hardened=hardened, blind=blind
    )
    fixed: Dict[str, object] = {
        "rounds": args.rounds,
        "kind": args.kind,
        "window": args.window,
        "drop": args.drop,
    }
    cache = None
    if args.out:
        cache = ResultCache(os.path.join(args.out, "cache"))
    total = len(cells) * args.seeds
    progress = Progress.for_tty(total, label="targeted soak")
    try:
        result = run_targeted_soak(
            cells,
            seeds=range(args.seeds),
            jobs=args.jobs,
            cache=cache,
            resume=args.resume,
            progress=progress,
            **fixed,
        )
    except InvariantViolation as violation:
        # Red alert: a *targeted* adversary must still never learn z.
        print("\nINVARIANT VIOLATION: {}".format(violation), file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        print(
            "\ninterrupted after {} of {} tasks{}".format(
                progress.done,
                total,
                " — rerun with --resume to continue" if args.out else "",
            ),
            file=sys.stderr,
        )
        return 130
    progress.finish()
    payload = targeted_payload(result, fixed)
    payload["scenario"] = "targeted"
    payload["seeds"] = args.seeds
    payload["fixed"] = dict(fixed)
    payload["policies"] = list(policies)
    payload["budgets"] = ["{}:{}".format(*pair) for pair in budgets]
    flat_records = [record for cell in result.cells for record in cell.runs]
    payload["profile"] = profile_payload(flat_records)
    payload["profile"]["elapsed_seconds"] = round(progress.elapsed(), 3)
    rows: List[List[object]] = []
    for entry in payload["cells"]:
        cell = entry["cell"]
        rows.append(
            [
                cell["policy"],
                "{}:{}".format(cell["per_round"], cell["total"]),
                cell["n"],
                "hardened" if cell["hardened"] else "default",
                "blind" if cell["blind"] else "aware",
                entry["budget_spent"],
                "ok" if entry["ledger_ok"] else "MISMATCH",
                entry["delivery_rate"]
                if entry["delivery_rate"] is not None
                else "-",
                entry["tracked_delivery_rate"]
                if entry["tracked_delivery_rate"] is not None
                else "-",
                entry["fallback_rate"],
                entry["clean"],
            ]
        )
    table = format_table(
        [
            "policy",
            "budget",
            "n",
            "preset",
            "mode",
            "spent",
            "ledger",
            "delivery",
            "tracked",
            "fallback",
            "clean",
        ],
        rows,
        title="targeted soak ({} cells x {} seeds)".format(
            len(cells), args.seeds
        ),
    )
    if args.json:
        print(json.dumps(payload, indent=2, default=str))
    else:
        print(table)
        if payload["comparisons"]:
            comp_rows = [
                [
                    comp["policy"],
                    "{}:{}".format(comp["per_round"], comp["total"]),
                    comp["n"],
                    "hardened" if comp["hardened"] else "default",
                    comp["targeted_delivery"]
                    if comp["targeted_delivery"] is not None
                    else "-",
                    comp["oblivious_delivery"]
                    if comp["oblivious_delivery"] is not None
                    else "-",
                    comp["delivery_delta"]
                    if comp["delivery_delta"] is not None
                    else "-",
                    comp["targeted_spent"],
                    comp["oblivious_spent"],
                ]
                for comp in payload["comparisons"]
            ]
            print()
            print(
                format_table(
                    [
                        "policy",
                        "budget",
                        "n",
                        "preset",
                        "aware",
                        "blind",
                        "delta",
                        "aware spent",
                        "blind spent",
                    ],
                    comp_rows,
                    title="targeted vs matched-budget oblivious",
                )
            )
    if args.out:
        with open(
            os.path.join(args.out, "targeted_soak.txt"), "w", encoding="utf-8"
        ) as handle:
            handle.write(table + "\n")
        artifact = write_bench_json(
            TARGETED_BENCH_NAME, payload, results_dir=args.out
        )
        print("artifacts: {}".format(artifact), file=sys.stderr)
    return 0 if payload["all_clean"] and payload["all_ledgers_ok"] else 1


def cmd_load_soak(args: argparse.Namespace) -> int:
    if args.resume and not args.out:
        print("--resume needs --out (the cache lives there)", file=sys.stderr)
        return 2
    cells = load_cells(
        args.rates,
        args.n,
        processes=args.processes,
        presets=args.presets,
        engines=args.engines,
    )
    fixed: Dict[str, object] = {
        "rounds": args.rounds,
        "deadline": args.deadline,
        "dest_size": args.dest_size,
        "zipf_groups": args.zipf_groups,
        "zipf_s": args.zipf_s,
        "queue_cap": args.queue_cap,
    }
    if args.max_wait is not None:
        fixed["max_wait"] = args.max_wait
    if args.per_round is not None:
        fixed["per_round"] = args.per_round
    cache = None
    if args.out:
        cache = ResultCache(os.path.join(args.out, "cache"))
    total = len(cells) * args.seeds
    progress = Progress.for_tty(total, label="load soak")
    try:
        result = run_load_soak(
            cells,
            seeds=range(args.seeds),
            jobs=args.jobs,
            cache=cache,
            resume=args.resume,
            progress=progress,
            **fixed,
        )
    except InvariantViolation as violation:
        # Red alert: overload may shed traffic, it must never leak z.
        print("\nINVARIANT VIOLATION: {}".format(violation), file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        print(
            "\ninterrupted after {} of {} tasks{}".format(
                progress.done,
                total,
                " — rerun with --resume to continue" if args.out else "",
            ),
            file=sys.stderr,
        )
        return 130
    progress.finish()
    payload = load_payload(result, fixed)
    payload["scenario"] = "open"
    payload["seeds"] = args.seeds
    flat_records = [record for cell in result.cells for record in cell.runs]
    payload["profile"] = profile_payload(flat_records)
    payload["profile"]["elapsed_seconds"] = round(progress.elapsed(), 3)
    rows: List[List[object]] = []
    for entry in payload["cells"]:
        cell = entry["cell"]
        rows.append(
            [
                cell["process"],
                cell["rate"],
                cell["n"],
                cell["preset"],
                cell.get("engine", "object"),
                entry["budget"],
                entry["offered"],
                entry["admitted"],
                entry["shed_rate"],
                entry["delivery_latency"]["p99"]
                if entry["delivery_latency"]["p99"] is not None
                else "-",
                entry["e2e_latency_worst_seed"]["p99"]
                if entry["e2e_latency_worst_seed"]["p99"] is not None
                else "-",
                entry["fallback_rate"],
                entry["qod_satisfied"],
                entry["clean"] and entry["shed_leak_free"],
            ]
        )
    table = format_table(
        [
            "process",
            "rate",
            "n",
            "preset",
            "engine",
            "budget",
            "offered",
            "admitted",
            "shed",
            "p99",
            "e2e p99",
            "fallback",
            "qod",
            "clean",
        ],
        rows,
        title="load soak ({} cells x {} seeds)".format(len(cells), args.seeds),
    )
    if args.json:
        print(json.dumps(payload, indent=2, default=str))
    else:
        print(table)
        knee_rows = [
            [
                knee["n"],
                knee["process"],
                knee["preset"],
                knee.get("engine", "object"),
                knee["knee_rate"] if knee["knee_rate"] is not None else "-",
                knee["ceiling_admitted_per_round"]
                if knee["ceiling_admitted_per_round"] is not None
                else "-",
                knee["rumors_per_sec_at_knee"]
                if knee["rumors_per_sec_at_knee"] is not None
                else "-",
                knee["first_saturated_rate"]
                if knee["first_saturated_rate"] is not None
                else "-",
            ]
            for knee in payload["knees"]
        ]
        print()
        print(
            format_table(
                [
                    "n",
                    "process",
                    "preset",
                    "engine",
                    "knee rate",
                    "ceiling/round",
                    "rumors/sec",
                    "saturates at",
                ],
                knee_rows,
                title="saturation knees",
            )
        )
    if args.out:
        with open(
            os.path.join(args.out, "load_soak.txt"), "w", encoding="utf-8"
        ) as handle:
            handle.write(table + "\n")
        artifact = write_bench_json(
            LOAD_BENCH_NAME, payload, results_dir=args.out
        )
        print("artifacts: {}".format(artifact), file=sys.stderr)
    return 0 if payload["all_clean"] and payload["all_shed_leak_free"] else 1


def _builder_kwargs(builder) -> str:
    """Render a builder's keyword arguments for the listing."""
    parts: List[str] = []
    for parameter in inspect.signature(builder).parameters.values():
        if parameter.default is inspect.Parameter.empty:
            parts.append(parameter.name)
        else:
            parts.append("{}={!r}".format(parameter.name, parameter.default))
    return ", ".join(parts)


def _perf_micro(args: argparse.Namespace) -> int:
    if args.case:
        cases = [get_case(key) for key in args.case]
    else:
        cases = None
    results = run_suite(
        cases, repeats=args.repeats, warmup=args.warmup, profile=args.profile
    )
    payload = suite_payload(results)
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    rows: List[List[object]] = []
    for result in results:
        rows.append(
            [
                result.key,
                "{:.4f}".format(result.best),
                "{:.4f}".format(result.mean),
                "{:.2f}".format(result.best_per_op * 1e6),
                result.repeats,
            ]
        )
    print(
        format_table(
            ["case", "best s", "mean s", "us/op", "repeats"],
            rows,
            title="Microbenchmarks ({} warmup, keys: {})".format(
                args.warmup, len(results)
            ),
        )
    )
    if args.profile:
        for result in results:
            if not result.hotspots:
                continue
            print("\n{} hotspots:".format(result.key))
            for spot in result.hotspots[:5]:
                print(
                    "  {cumtime_s:>8.4f}s cum  {calls:>8} calls  {function}".format(
                        **spot
                    )
                )
    return 0


def _perf_scaling(args: argparse.Namespace) -> int:
    ns = tuple(args.ns) if args.ns else (16, 64, 256)
    engines = tuple(args.engine) if args.engine else ("object",)
    rows: List[Dict[str, object]] = []
    for engine in engines:
        rows.extend(
            run_engine_scaling(
                ns=ns,
                rounds=args.rounds,
                deadline=args.deadline,
                repeats=max(1, args.repeats),
                engine=engine,
            )
        )
    payload = engine_scaling_payload(rows)
    if args.out:
        path = write_bench_json(E17_BENCH_NAME, payload, args.out)
        print("wrote {}".format(path), file=sys.stderr)
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    table: List[List[object]] = []
    for row in rows:
        table.append(
            [
                row["n"],
                row["engine"],
                "{:.3f}".format(row["wall_s"]),
                (
                    "{:.3f}".format(row["baseline_s"])
                    if row["baseline_s"]
                    else "-"
                ),
                "{:.2f}x".format(row["speedup"]) if row["speedup"] else "-",
                row["total"],
                "yes" if row["clean"] else "NO",
                row["digest"][:12],
            ]
        )
    print(
        format_table(
            [
                "n",
                "engine",
                "wall s",
                "base s",
                "speedup",
                "msgs",
                "clean",
                "digest",
            ],
            table,
            title="E17 engine scaling ({} rounds, steady/lean)".format(
                args.rounds
            ),
        )
    )
    for n, ratio in sorted(
        payload["engine_speedup"].items(), key=lambda item: int(item[0])
    ):
        print("n={}: array is {:.2f}x the object engine".format(n, ratio))
    return 0


def _perf_chaos_scaling(args: argparse.Namespace) -> int:
    if args.resume and not args.out:
        print("--resume needs --out (the cache lives there)", file=sys.stderr)
        return 2
    ns = tuple(args.ns) if args.ns else (64, 256)
    cache = None
    if args.out:
        cache = ResultCache(os.path.join(args.out, "cache"))
    total = len(ns) * len(args.drop) * len(args.delay) * args.seeds
    progress = Progress.for_tty(total, label="chaos scaling")
    try:
        results = run_chaos_scaling(
            ns=ns,
            drop=args.drop,
            delay=args.delay,
            seeds=range(args.seeds),
            rounds=args.rounds,
            deadline=args.deadline,
            jobs=args.jobs,
            cache=cache,
            resume=args.resume,
            progress=progress,
        )
    except InvariantViolation as violation:
        print("\nINVARIANT VIOLATION: {}".format(violation), file=sys.stderr)
        return 1
    progress.finish()
    payload = chaos_scaling_payload(results)
    flat_records = [
        record
        for _, sweep, _ in results
        for cell in sweep.cells
        for record in cell.runs
    ]
    payload["profile"] = profile_payload(flat_records)
    payload["profile"]["elapsed_seconds"] = round(progress.elapsed(), 3)
    if args.out:
        path = write_bench_json(E17B_BENCH_NAME, payload, args.out)
        print("wrote {}".format(path), file=sys.stderr)
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    rows: List[List[object]] = []
    for body in payload["per_n"]:
        for entry in body["cells"]:
            rows.append(
                [
                    body["n"],
                    entry["cell"]["drop"],
                    entry["cell"]["delay"],
                    (
                        "{:.4f}".format(entry["delivery_rate"])
                        if entry["delivery_rate"] is not None
                        else "-"
                    ),
                    "yes" if entry["qod_satisfied"] else "NO",
                    "yes" if entry["clean"] else "NO",
                ]
            )
    print(
        format_table(
            ["n", "drop", "delay", "delivery", "qod", "clean"],
            rows,
            title="E17b chaos scaling ({} rounds)".format(args.rounds),
        )
    )
    cliff = payload["cliff"]["first_failing_drop"]
    for n in sorted(cliff, key=int):
        placement = cliff[n]
        print(
            "n={}: QoD cliff at drop={}".format(n, placement)
            if placement is not None
            else "n={}: no cliff on this drop axis".format(n)
        )
    return 0


def cmd_perf(args: argparse.Namespace) -> int:
    if args.suite == "micro":
        return _perf_micro(args)
    if args.suite == "scaling":
        return _perf_scaling(args)
    return _perf_chaos_scaling(args)


def _record_digest(result) -> str:
    """sha256 of the run's profile-free RunRecord payload."""
    clean = RunRecord.from_result(result).without_profile().to_dict()
    return hashlib.sha256(canonical_json(clean).encode("utf-8")).hexdigest()


def _net_verify(args: argparse.Namespace) -> int:
    params = _trace_params(args)
    kwargs = _scenario_kwargs(args)
    builder = SCENARIOS[args.scenario]
    base = builder(seed=args.seed, params=params, **kwargs)
    if base.chaos is not None or base.targeted is not None:
        # The default index-order fate stream has no shard-invariant
        # meaning; both backends must draw message-keyed fates to be
        # digest-comparable.  Targeted planes are message-keyed by
        # construction but their oblivious fallthrough still needs it.
        base = dataclasses.replace(base, chaos_keyed=True)
    inproc = run_congos_scenario(base)
    sharded = run_congos_scenario(
        dataclasses.replace(
            base,
            backend="sharded",
            net={"workers": args.workers, "transport": args.transport},
        )
    )
    inproc_digest = _record_digest(inproc)
    sharded_digest = _record_digest(sharded)
    match = inproc_digest == sharded_digest
    clean = sharded.confidentiality.is_clean()
    payload: Dict[str, object] = {
        "scenario": args.scenario,
        "n": args.n,
        "rounds": args.rounds,
        "seed": args.seed,
        "workers": args.workers,
        "transport": args.transport,
        "inproc_digest": inproc_digest,
        "sharded_digest": sharded_digest,
        "digest_match": match,
        "clean": clean,
        "qod_satisfied": sharded.qod.satisfied,
        "net": sharded.engine.net_summary(),
    }
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        net = payload["net"]
        print(
            format_kv(
                [
                    ("scenario", args.scenario),
                    ("n / rounds / seed", "{} / {} / {}".format(
                        args.n, args.rounds, args.seed
                    )),
                    ("workers x transport", "{} x {}".format(
                        args.workers, args.transport
                    )),
                    ("inproc digest", inproc_digest[:16]),
                    ("sharded digest", sharded_digest[:16]),
                    ("digests match", "yes" if match else "NO"),
                    ("confidentiality clean", "yes" if clean else "NO"),
                    ("local / cross messages", "{} / {}".format(
                        net["local_messages"], net["cross_messages"]
                    )),
                    ("cross fraction", net["cross_fraction"]),
                ],
                title="net verify",
            )
        )
    return 0 if match and clean else 1


def _net_bench(args: argparse.Namespace) -> int:
    ns = tuple(args.ns) if args.ns else (64, 256)
    progress = Progress.for_tty(len(ns), label="net bench")
    rows = run_sharded_scaling(
        ns=ns,
        rounds=args.rounds,
        deadline=args.deadline,
        workers=args.workers,
        transport=args.transport,
        progress=progress,
    )
    progress.finish()
    payload = sharded_scaling_payload(rows)
    if args.out:
        path = write_bench_json(E18_BENCH_NAME, payload, args.out)
        print("wrote {}".format(path), file=sys.stderr)
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0 if payload["all_digests_match"] and payload["all_clean"] else 1
    table: List[List[object]] = []
    for row in rows:
        table.append(
            [
                row["n"],
                "{:.3f}".format(row["wall_inproc_s"]),
                "{:.3f}".format(row["wall_sharded_s"]),
                "{:.2f}x".format(row["slowdown"]) if row["slowdown"] else "-",
                row["total"],
                row["cross_fraction"],
                "yes" if row["digest_match"] else "NO",
                "yes" if row["clean"] else "NO",
            ]
        )
    print(
        format_table(
            [
                "n",
                "inproc s",
                "sharded s",
                "slowdown",
                "msgs",
                "cross",
                "match",
                "clean",
            ],
            table,
            title="E18 sharded scaling ({} rounds, {} workers, {}, "
            "single host)".format(args.rounds, args.workers, args.transport),
        )
    )
    return 0 if payload["all_digests_match"] and payload["all_clean"] else 1


def cmd_net(args: argparse.Namespace) -> int:
    if args.suite == "verify":
        return _net_verify(args)
    return _net_bench(args)


def cmd_scenarios(_: argparse.Namespace) -> int:
    rows = []
    for name, builder in sorted(SCENARIOS.items()):
        doc = (builder.__doc__ or "").strip().splitlines()
        rows.append([name, doc[0] if doc else "", _builder_kwargs(builder)])
    print(format_table(["scenario", "description", "kwargs"], rows))
    return 0


def cmd_partitions(args: argparse.Namespace) -> int:
    params = CongosParams(tau=args.tau) if args.tau > 1 else CongosParams()
    partitions = build_partition_set(args.n, params, args.seed)
    rows = []
    for index in range(partitions.count):
        sizes = [
            len(partitions.members(index, group))
            for group in range(partitions.num_groups)
        ]
        rows.append([index, sizes])
    print(
        format_table(
            ["partition", "group sizes"],
            rows,
            title="{} partitions of {} groups over n={}".format(
                partitions.count, partitions.num_groups, args.n
            ),
        )
    )
    return 0


def cmd_bounds(args: argparse.Namespace) -> int:
    pairs = [
        (
            "Thm 11 upper (per round)",
            congos_upper_bound(args.n, args.dmin),
        ),
        (
            "Thm 16 upper (tau={})".format(args.tau),
            collusion_upper_bound(args.n, args.dmin, args.tau),
        ),
        (
            "Thm 1 lower (strong conf.)",
            strong_confidentiality_lower_bound(args.n, args.dmax),
        ),
        (
            "Thm 12 lower (tau={})".format(args.tau),
            collusion_lower_bound(args.n, args.dmax, args.tau),
        ),
    ]
    print(
        format_kv(
            pairs,
            title="Paper bounds at n={}, dmin={}, dmax={}".format(
                args.n, args.dmin, args.dmax
            ),
        )
    )
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "run": cmd_run,
        "sweep": cmd_sweep,
        "trace": cmd_trace,
        "profile-sweep": cmd_profile_sweep,
        "chaos-soak": cmd_chaos_soak,
        "direct-soak": cmd_direct_soak,
        "targeted-soak": cmd_targeted_soak,
        "load-soak": cmd_load_soak,
        "perf": cmd_perf,
        "net": cmd_net,
        "scenarios": cmd_scenarios,
        "partitions": cmd_partitions,
        "bounds": cmd_bounds,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
