"""Command-line launcher: ``python -m repro.harness.cli <command>``.

Commands
--------
``run``
    Run an audited CONGOS scenario and print its summary.
``scenarios``
    List the available scenario builders.
``partitions``
    Inspect the partition family a deployment would use.
``bounds``
    Print the paper's closed-form bounds for given parameters.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Dict

from repro.analysis.bounds import (
    collusion_lower_bound,
    collusion_upper_bound,
    congos_upper_bound,
    strong_confidentiality_lower_bound,
)
from repro.core.config import CongosParams
from repro.core.congos import build_partition_set
from repro.harness import scenarios as scenario_module
from repro.harness.report import format_kv, format_table
from repro.harness.runner import run_congos_scenario

SCENARIOS: Dict[str, Callable] = {
    "steady": scenario_module.steady_scenario,
    "churn": scenario_module.churn_scenario,
    "proxy-killer": scenario_module.proxy_killer_scenario,
    "group-killer": scenario_module.group_killer_scenario,
    "source-killer": scenario_module.source_killer_scenario,
    "rolling-blackout": scenario_module.rolling_blackout_scenario,
    "burst": scenario_module.burst_scenario,
    "theorem1": scenario_module.theorem1_scenario,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Confidential Gossip (ICDCS 2011) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run an audited CONGOS scenario")
    run.add_argument("scenario", choices=sorted(SCENARIOS))
    run.add_argument("-n", type=int, default=16, help="process count")
    run.add_argument("--rounds", type=int, default=400)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--deadline", type=int, default=128)
    run.add_argument("--tau", type=int, default=1, help="collusion tolerance")
    run.add_argument("--json", action="store_true", help="emit JSON summary")

    sub.add_parser("scenarios", help="list available scenarios")

    partitions = sub.add_parser("partitions", help="inspect a partition family")
    partitions.add_argument("-n", type=int, default=16)
    partitions.add_argument("--tau", type=int, default=1)
    partitions.add_argument("--seed", type=int, default=0)

    bounds = sub.add_parser("bounds", help="print the paper's bounds")
    bounds.add_argument("-n", type=int, default=64)
    bounds.add_argument("--dmin", type=int, default=128)
    bounds.add_argument("--dmax", type=int, default=128)
    bounds.add_argument("--tau", type=int, default=1)
    return parser


def cmd_run(args: argparse.Namespace) -> int:
    params = CongosParams(tau=args.tau) if args.tau > 1 else CongosParams()
    builder = SCENARIOS[args.scenario]
    kwargs = dict(
        n=args.n,
        rounds=args.rounds,
        seed=args.seed,
        params=params,
    )
    if args.scenario == "theorem1":
        kwargs["dmax"] = args.deadline
    elif args.scenario == "collusion":
        kwargs["tau"] = args.tau
        kwargs["deadline"] = args.deadline
    else:
        kwargs["deadline"] = args.deadline
    result = run_congos_scenario(builder(**kwargs))
    summary = result.summary()
    if args.json:
        print(json.dumps(summary, indent=2, default=str))
    else:
        print(format_kv(sorted(summary["messages"].items()), title="Messages"))
        print()
        print(format_kv(sorted(summary["qod"].items()), title="Quality of Delivery"))
        print()
        print(
            format_kv(
                sorted(summary["confidentiality"].items()), title="Confidentiality"
            )
        )
        print()
        print(format_kv(sorted(summary["faults"].items()), title="CRRI events"))
    ok = result.qod.satisfied and result.confidentiality.is_clean()
    return 0 if ok else 1


def cmd_scenarios(_: argparse.Namespace) -> int:
    rows = []
    for name, builder in sorted(SCENARIOS.items()):
        doc = (builder.__doc__ or "").strip().splitlines()
        rows.append([name, doc[0] if doc else ""])
    print(format_table(["scenario", "description"], rows))
    return 0


def cmd_partitions(args: argparse.Namespace) -> int:
    params = CongosParams(tau=args.tau) if args.tau > 1 else CongosParams()
    partitions = build_partition_set(args.n, params, args.seed)
    rows = []
    for index in range(partitions.count):
        sizes = [
            len(partitions.members(index, group))
            for group in range(partitions.num_groups)
        ]
        rows.append([index, sizes])
    print(
        format_table(
            ["partition", "group sizes"],
            rows,
            title="{} partitions of {} groups over n={}".format(
                partitions.count, partitions.num_groups, args.n
            ),
        )
    )
    return 0


def cmd_bounds(args: argparse.Namespace) -> int:
    pairs = [
        (
            "Thm 11 upper (per round)",
            congos_upper_bound(args.n, args.dmin),
        ),
        (
            "Thm 16 upper (tau={})".format(args.tau),
            collusion_upper_bound(args.n, args.dmin, args.tau),
        ),
        (
            "Thm 1 lower (strong conf.)",
            strong_confidentiality_lower_bound(args.n, args.dmax),
        ),
        (
            "Thm 12 lower (tau={})".format(args.tau),
            collusion_lower_bound(args.n, args.dmax, args.tau),
        ),
    ]
    print(
        format_kv(
            pairs,
            title="Paper bounds at n={}, dmin={}, dmax={}".format(
                args.n, args.dmin, args.dmax
            ),
        )
    )
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "run": cmd_run,
        "scenarios": cmd_scenarios,
        "partitions": cmd_partitions,
        "bounds": cmd_bounds,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
