"""Command-line launcher: ``python -m repro.harness.cli <command>``.

Commands
--------
``run``
    Run an audited CONGOS scenario (optionally replicated across seeds,
    in parallel with ``--jobs``) and print its summary.
``sweep``
    Run a scenario family over an ``n`` × ``deadline`` grid on the exec
    pool, with a resumable on-disk result cache and machine-readable
    artifacts (``--jobs``, ``--resume``, ``--out``).
``scenarios``
    List the registered scenario builders and their keyword arguments.
``partitions``
    Inspect the partition family a deployment would use.
``bounds``
    Print the paper's closed-form bounds for given parameters.
"""

from __future__ import annotations

import argparse
import inspect
import json
import os
import sys
from typing import Dict, List

from repro.analysis.bounds import (
    collusion_lower_bound,
    collusion_upper_bound,
    congos_upper_bound,
    strong_confidentiality_lower_bound,
)
from repro.analysis.sweeps import grid, sweep_congos
from repro.core.config import CongosParams
from repro.core.congos import build_partition_set
from repro.exec.bench_io import sweep_payload, write_bench_json
from repro.exec.cache import ResultCache
from repro.exec.pool import run_specs
from repro.exec.progress import Progress
from repro.exec.tasks import RunSpec
from repro.harness.report import format_kv, format_table
from repro.harness.runner import run_congos_scenario
from repro.harness.scenarios import BUILDERS

SCENARIOS = BUILDERS


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Confidential Gossip (ICDCS 2011) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run an audited CONGOS scenario")
    run.add_argument("scenario", choices=sorted(SCENARIOS))
    run.add_argument("-n", type=int, default=16, help="process count")
    run.add_argument("--rounds", type=int, default=400)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--seeds",
        type=int,
        nargs="+",
        default=None,
        metavar="SEED",
        help="replicate the run across these seeds (aggregated table)",
    )
    run.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for multi-seed runs (0 = cpu count)",
    )
    run.add_argument("--deadline", type=int, default=128)
    run.add_argument("--tau", type=int, default=1, help="collusion tolerance")
    run.add_argument("--json", action="store_true", help="emit JSON summary")

    sweep = sub.add_parser(
        "sweep", help="run a scenario grid on the parallel exec pool"
    )
    sweep.add_argument("scenario", choices=sorted(SCENARIOS))
    sweep.add_argument(
        "-n",
        type=int,
        nargs="+",
        default=[16],
        metavar="N",
        help="process-count axis of the grid",
    )
    sweep.add_argument(
        "--deadline",
        type=int,
        nargs="+",
        default=[128],
        metavar="D",
        help="deadline axis of the grid",
    )
    sweep.add_argument("--rounds", type=int, default=400)
    sweep.add_argument(
        "--seeds", type=int, default=2, help="seed replicates per cell"
    )
    sweep.add_argument(
        "--jobs",
        type=int,
        default=0,
        help="worker processes (0 = cpu count, 1 = serial)",
    )
    sweep.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="artifact directory: result cache, TXT table, BENCH JSON",
    )
    sweep.add_argument(
        "--resume",
        action="store_true",
        help="reuse cached cells under --out instead of re-running them",
    )
    sweep.add_argument("--tau", type=int, default=1)
    sweep.add_argument(
        "--lean", action="store_true", help="use CongosParams.lean()"
    )
    sweep.add_argument("--json", action="store_true", help="emit JSON payload")

    sub.add_parser("scenarios", help="list registered scenario builders")

    partitions = sub.add_parser("partitions", help="inspect a partition family")
    partitions.add_argument("-n", type=int, default=16)
    partitions.add_argument("--tau", type=int, default=1)
    partitions.add_argument("--seed", type=int, default=0)

    bounds = sub.add_parser("bounds", help="print the paper's bounds")
    bounds.add_argument("-n", type=int, default=64)
    bounds.add_argument("--dmin", type=int, default=128)
    bounds.add_argument("--dmax", type=int, default=128)
    bounds.add_argument("--tau", type=int, default=1)
    return parser


def _scenario_kwargs(args: argparse.Namespace) -> Dict[str, object]:
    """Map CLI flags onto the builder's kwargs (axis-name quirks included)."""
    kwargs: Dict[str, object] = {"n": args.n, "rounds": args.rounds}
    if args.scenario == "theorem1":
        kwargs["dmax"] = args.deadline
    elif args.scenario == "collusion":
        kwargs["tau"] = args.tau
        kwargs["deadline"] = args.deadline
    else:
        kwargs["deadline"] = args.deadline
    return kwargs


def cmd_run(args: argparse.Namespace) -> int:
    params = CongosParams(tau=args.tau) if args.tau > 1 else CongosParams()
    kwargs = _scenario_kwargs(args)
    if args.seeds is not None and len(args.seeds) > 1:
        return _run_multi_seed(args, params, kwargs)
    seed = args.seeds[0] if args.seeds else args.seed
    builder = SCENARIOS[args.scenario]
    result = run_congos_scenario(builder(seed=seed, params=params, **kwargs))
    summary = result.summary()
    if args.json:
        print(json.dumps(summary, indent=2, default=str))
    else:
        print(format_kv(sorted(summary["messages"].items()), title="Messages"))
        print()
        print(format_kv(sorted(summary["qod"].items()), title="Quality of Delivery"))
        print()
        print(
            format_kv(
                sorted(summary["confidentiality"].items()), title="Confidentiality"
            )
        )
        print()
        print(format_kv(sorted(summary["faults"].items()), title="CRRI events"))
    ok = result.qod.satisfied and result.confidentiality.is_clean()
    return 0 if ok else 1


def _run_multi_seed(
    args: argparse.Namespace, params: CongosParams, kwargs: Dict[str, object]
) -> int:
    """Replicate one scenario across seeds on the exec pool."""
    specs = [
        RunSpec.make(args.scenario, seed=seed, params=params, **kwargs)
        for seed in args.seeds
    ]
    records = run_specs(specs, jobs=args.jobs)
    if args.json:
        print(json.dumps([record.to_dict() for record in records], indent=2))
    else:
        rows: List[List[object]] = [
            [
                record.seed,
                record.peak,
                record.total,
                record.rumors_injected,
                record.qod_satisfied,
                record.clean,
            ]
            for record in records
        ]
        print(
            format_table(
                ["seed", "peak", "total msgs", "rumors", "qod", "clean"],
                rows,
                title="{} across {} seeds".format(args.scenario, len(records)),
            )
        )
    ok = all(r.qod_satisfied for r in records) and all(r.clean for r in records)
    return 0 if ok else 1


def cmd_sweep(args: argparse.Namespace) -> int:
    if args.resume and not args.out:
        print("--resume needs --out (the cache lives there)", file=sys.stderr)
        return 2
    axis = "dmax" if args.scenario == "theorem1" else "deadline"
    cells = grid(**{"n": args.n, axis: args.deadline})
    if args.lean:
        params = CongosParams.lean(tau=args.tau)
    elif args.tau > 1:
        params = CongosParams(tau=args.tau)
    else:
        params = CongosParams()
    fixed: Dict[str, object] = {"rounds": args.rounds, "params": params}
    if args.scenario == "collusion":
        fixed["tau"] = args.tau
    cache = None
    if args.out:
        cache = ResultCache(os.path.join(args.out, "cache"))
    total = len(cells) * args.seeds
    progress = Progress.for_tty(total, label="sweep {}".format(args.scenario))
    try:
        result = sweep_congos(
            args.scenario,
            cells,
            seeds=range(args.seeds),
            jobs=args.jobs,
            cache=cache,
            resume=args.resume,
            progress=progress,
            **fixed,
        )
    except KeyboardInterrupt:
        print(
            "\ninterrupted after {} of {} tasks{}".format(
                progress.done,
                total,
                " — rerun with --resume to continue" if args.out else "",
            ),
            file=sys.stderr,
        )
        return 130
    progress.finish()
    table = format_table(
        result.table_headers(),
        result.table_rows(),
        title="sweep {} ({} cells x {} seeds)".format(
            args.scenario, len(cells), args.seeds
        ),
    )
    payload = sweep_payload(result)
    payload["scenario"] = args.scenario
    payload["seeds"] = args.seeds
    payload["elapsed_seconds"] = round(progress.elapsed(), 3)
    payload["executed_tasks"] = progress.executed
    payload["cached_tasks"] = progress.cached
    if args.json:
        print(json.dumps(payload, indent=2, default=str))
    else:
        print(table)
    if args.out:
        name = "{}_sweep".format(args.scenario)
        with open(
            os.path.join(args.out, "{}.txt".format(name)), "w", encoding="utf-8"
        ) as handle:
            handle.write(table + "\n")
        artifact = write_bench_json(name, payload, results_dir=args.out)
        print("artifacts: {}".format(artifact), file=sys.stderr)
    return 0 if result.all_satisfied() and result.all_clean() else 1


def _builder_kwargs(builder) -> str:
    """Render a builder's keyword arguments for the listing."""
    parts: List[str] = []
    for parameter in inspect.signature(builder).parameters.values():
        if parameter.default is inspect.Parameter.empty:
            parts.append(parameter.name)
        else:
            parts.append("{}={!r}".format(parameter.name, parameter.default))
    return ", ".join(parts)


def cmd_scenarios(_: argparse.Namespace) -> int:
    rows = []
    for name, builder in sorted(SCENARIOS.items()):
        doc = (builder.__doc__ or "").strip().splitlines()
        rows.append([name, doc[0] if doc else "", _builder_kwargs(builder)])
    print(format_table(["scenario", "description", "kwargs"], rows))
    return 0


def cmd_partitions(args: argparse.Namespace) -> int:
    params = CongosParams(tau=args.tau) if args.tau > 1 else CongosParams()
    partitions = build_partition_set(args.n, params, args.seed)
    rows = []
    for index in range(partitions.count):
        sizes = [
            len(partitions.members(index, group))
            for group in range(partitions.num_groups)
        ]
        rows.append([index, sizes])
    print(
        format_table(
            ["partition", "group sizes"],
            rows,
            title="{} partitions of {} groups over n={}".format(
                partitions.count, partitions.num_groups, args.n
            ),
        )
    )
    return 0


def cmd_bounds(args: argparse.Namespace) -> int:
    pairs = [
        (
            "Thm 11 upper (per round)",
            congos_upper_bound(args.n, args.dmin),
        ),
        (
            "Thm 16 upper (tau={})".format(args.tau),
            collusion_upper_bound(args.n, args.dmin, args.tau),
        ),
        (
            "Thm 1 lower (strong conf.)",
            strong_confidentiality_lower_bound(args.n, args.dmax),
        ),
        (
            "Thm 12 lower (tau={})".format(args.tau),
            collusion_lower_bound(args.n, args.dmax, args.tau),
        ),
    ]
    print(
        format_kv(
            pairs,
            title="Paper bounds at n={}, dmin={}, dmax={}".format(
                args.n, args.dmin, args.dmax
            ),
        )
    )
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "run": cmd_run,
        "sweep": cmd_sweep,
        "scenarios": cmd_scenarios,
        "partitions": cmd_partitions,
        "bounds": cmd_bounds,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
