"""Experiment harness: scenario builders, audited runner, reporting."""

from repro.harness.oneshot import BroadcastResult, confidential_broadcast
from repro.harness.report import banner, format_kv, format_table, ratio_series
from repro.harness.runner import (
    RunResult,
    Scenario,
    run_congos_scenario,
    run_with_factory,
)
from repro.harness.scenarios import (
    burst_scenario,
    churn_scenario,
    collusion_scenario,
    group_killer_scenario,
    injection_window,
    proxy_killer_scenario,
    rolling_blackout_scenario,
    source_killer_scenario,
    steady_scenario,
    theorem1_scenario,
)

__all__ = [
    "BroadcastResult",
    "RunResult",
    "Scenario",
    "banner",
    "burst_scenario",
    "churn_scenario",
    "collusion_scenario",
    "confidential_broadcast",
    "format_kv",
    "format_table",
    "group_killer_scenario",
    "injection_window",
    "proxy_killer_scenario",
    "ratio_series",
    "rolling_blackout_scenario",
    "run_congos_scenario",
    "run_with_factory",
    "source_killer_scenario",
    "steady_scenario",
    "theorem1_scenario",
]
