"""Experiment runner: build an audited simulation, run it, collect verdicts.

The runner owns the standard wiring used by tests, examples and benches:

* a :class:`~repro.core.congos.CongosNode` factory (or a baseline factory)
  with the :class:`~repro.audit.delivery.DeliveryAuditor` as the delivery
  callback;
* a :class:`~repro.audit.confidentiality.ConfidentialityAuditor` observing
  every delivered message;
* a :class:`~repro.adversary.base.ComposedAdversary` of the scenario's
  workload and fault model.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional

from repro.adversary.base import Adversary, ComposedAdversary
from repro.audit.confidentiality import ConfidentialityAuditor
from repro.audit.delivery import DeliveryAuditor, QoDReport
from repro.audit.failfast import FailFastMonitor
from repro.chaos.plane import ChaosFaultPlane, FaultPlane
from repro.chaos.spec import FaultSpec
from repro.chaos.targeted import TargetedFaultPlane, TargetedSpec
from repro.core.config import CongosParams
from repro.core.congos import build_partition_set, congos_factory
from repro.core.partitions import PartitionSet
from repro.sim.engine import Engine, SimObserver
from repro.sim.metrics import MessageStats
from repro.sim.rng import derive_rng

__all__ = [
    "Scenario",
    "RunResult",
    "TargetedInjectionTap",
    "run_congos_scenario",
    "run_with_factory",
]

WorkloadFactory = Callable[[random.Random], Adversary]
FaultFactory = Callable[[random.Random, PartitionSet, int], Adversary]


class TargetedInjectionTap(SimObserver):
    """Feeds injection announcements to a targeted fault plane.

    Forwards exactly the leak-safe metadata the adversary model allows:
    the rumor's id coordinates and its deadline — never the payload, the
    destination set, or node state.  The sharded backend broadcasts the
    same tuple in its round frames instead of using this observer.
    """

    def __init__(self, plane: "TargetedFaultPlane"):
        self.plane = plane

    def on_inject(self, round_no: int, pid: int, rumor) -> None:
        rid = rumor.rid
        self.plane.observe_injection(round_no, rid.src, rid.seq, rumor.deadline)


@dataclass
class Scenario:
    """A named, reproducible experiment configuration."""

    name: str
    n: int
    rounds: int
    seed: int
    params: CongosParams = field(default_factory=CongosParams)
    workload_factory: Optional[WorkloadFactory] = None
    fault_factory: Optional[FaultFactory] = None
    description: str = ""
    # Chaos extension (None = the paper's reliable network): a FaultSpec
    # as a plain dict, so scenarios stay JSON-representable in RunSpecs.
    chaos: Optional[Dict[str, object]] = None
    # Fail-fast invariant monitoring: None, "confidentiality" or "qod"
    # ("qod" implies the confidentiality check too).
    failfast: Optional[str] = None
    # Execution backend: "inproc" (default, one engine in this process)
    # or "sharded" (pids split over worker processes on a real transport,
    # see repro.net).  Both produce identical audited results.
    backend: str = "inproc"
    # Sharded-backend options (workers/transport/timeout), validated by
    # repro.net.coordinator.NetOptions.  Ignored by the inproc backend.
    net: Optional[Dict[str, object]] = None
    # Chaos fate streams: False (default) draws fates in message-index
    # order — byte-identical to the pre-sharding seed; True keys every
    # fate on (round, src, dst, copy), the shard-invariant mode the
    # sharded backend always uses.  Set it on inproc runs that must be
    # digest-comparable with sharded ones.
    chaos_keyed: bool = False
    # Targeted chaos extension (None = no rumor-aware adversary): a
    # TargetedSpec as a plain dict.  Composes with ``chaos`` — the
    # targeted policy decides first, the oblivious schedule after.
    targeted: Optional[Dict[str, object]] = None
    # Round kernel: "object" (default, the per-pid object model) or
    # "array" (repro.fastcore's vectorized numpy kernel; needs the
    # repro[fast] extra and models fault-free runs only).
    engine: str = "object"

    def __post_init__(self) -> None:
        if self.n < 2:
            raise ValueError("scenarios need at least two processes")
        if self.rounds < 1:
            raise ValueError("scenarios need at least one round")
        if self.failfast not in (None, "confidentiality", "qod"):
            raise ValueError(
                "failfast must be None, 'confidentiality' or 'qod'"
            )
        if self.backend not in ("inproc", "sharded"):
            raise ValueError("backend must be 'inproc' or 'sharded'")
        if self.engine not in ("object", "array"):
            raise ValueError("engine must be 'object' or 'array'")
        if self.chaos is not None:
            FaultSpec.from_dict(self.chaos)  # validate eagerly
        if self.targeted is not None:
            TargetedSpec.from_dict(self.targeted)  # validate eagerly

    def fault_spec(self) -> Optional[FaultSpec]:
        if self.chaos is None:
            return None
        spec = FaultSpec.from_dict(self.chaos)
        return None if spec.is_null() else spec

    def targeted_spec(self) -> Optional[TargetedSpec]:
        if self.targeted is None:
            return None
        return TargetedSpec.from_dict(self.targeted)


@dataclass
class RunResult:
    """Everything a bench or test wants to know about one run."""

    scenario: Scenario
    engine: Engine
    stats: MessageStats
    qod: QoDReport
    confidentiality: ConfidentialityAuditor
    delivery: DeliveryAuditor
    workload: Optional[Adversary]
    partition_set: PartitionSet
    fault_plane: Optional[FaultPlane] = None

    @property
    def rumors_injected(self) -> int:
        return len(self.delivery.rumors)

    def chaos_summary(self) -> Optional[Dict[str, int]]:
        """Injected-fault counts, or ``None`` for reliable-network runs."""
        if self.fault_plane is None:
            return None
        return self.fault_plane.counts_summary()

    def chaos_stage_summary(self) -> Optional[Dict[str, Dict[str, int]]]:
        """Fault counts by pipeline stage (proxy/gd/gossip/direct), or
        ``None`` for reliable-network runs."""
        if self.fault_plane is None:
            return None
        by_service = getattr(self.fault_plane, "counts_by_service", None)
        return by_service() if by_service is not None else None

    def summary(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "scenario": self.scenario.name,
            "n": self.scenario.n,
            "rounds": self.scenario.rounds,
            "rumors": self.rumors_injected,
            "messages": self.stats.summary(),
            "qod": self.qod.summary(),
            "confidentiality": self.confidentiality.summary(),
            "faults": self.engine.event_log.summary(),
        }
        chaos = self.chaos_summary()
        if chaos is not None:
            # Only present on chaos runs — default-run summaries (and the
            # bench payloads built from them) are unchanged.
            out["chaos"] = chaos
            out["chaos_by_stage"] = self.chaos_stage_summary()
        summarize = getattr(self.fault_plane, "targeted_summary", None)
        if summarize is not None:
            out["targeted"] = summarize()
        if getattr(self.workload, "load_summary", None) is not None:
            # Only open-workload runs carry a load/SLO section; closed
            # scenarios keep their summaries byte-identical.  Imported
            # lazily so default runs never touch repro.load.
            from repro.load.slo import slo_summary

            out["load"] = slo_summary(self)
        return out


def run_congos_scenario(
    scenario: Scenario,
    observers: Iterable[SimObserver] = (),
    partition_set: Optional[PartitionSet] = None,
    telemetry=None,
) -> RunResult:
    """Run CONGOS under the scenario's workload and faults, fully audited.

    ``telemetry`` (a :class:`repro.obs.Telemetry`) is threaded through the
    whole protocol stack; ``None`` keeps the zero-overhead null telemetry.
    """
    if scenario.engine == "array":
        # Imported lazily: repro.fastcore needs numpy (the repro[fast]
        # extra) and raises a pointed ImportError when it is missing.
        from repro.fastcore.runner import run_array_scenario

        return run_array_scenario(
            scenario,
            observers=observers,
            partition_set=partition_set,
            telemetry=telemetry,
        )
    if scenario.backend == "sharded":
        # Imported lazily: repro.net pulls in multiprocessing machinery
        # that default in-process runs never need.
        from repro.net.coordinator import run_sharded_scenario

        return run_sharded_scenario(
            scenario,
            observers=observers,
            partition_set=partition_set,
            telemetry=telemetry,
        )
    resolved_partitions = (
        partition_set
        if partition_set is not None
        else build_partition_set(scenario.n, scenario.params, scenario.seed)
    )
    delivery = DeliveryAuditor()
    factory = congos_factory(
        scenario.n,
        params=scenario.params,
        seed=scenario.seed,
        deliver_callback=delivery.record_delivery,
        partition_set=resolved_partitions,
        telemetry=telemetry,
    )
    return run_with_factory(
        scenario,
        factory,
        delivery=delivery,
        observers=observers,
        partition_set=resolved_partitions,
        telemetry=telemetry,
    )


def run_with_factory(
    scenario: Scenario,
    node_factory: Callable[[int], object],
    delivery: Optional[DeliveryAuditor] = None,
    observers: Iterable[SimObserver] = (),
    partition_set: Optional[PartitionSet] = None,
    telemetry=None,
) -> RunResult:
    """Run any protocol factory (CONGOS or a baseline) under a scenario.

    Baselines that do not use partitions still get a partition set for the
    confidentiality auditor's bookkeeping (fragment checks are vacuous for
    protocols that never fragment).
    """
    resolved_partitions = (
        partition_set
        if partition_set is not None
        else build_partition_set(scenario.n, scenario.params, scenario.seed)
    )
    resolved_delivery = delivery if delivery is not None else DeliveryAuditor()
    confidentiality = ConfidentialityAuditor(
        num_partitions=resolved_partitions.count,
        num_groups=resolved_partitions.num_groups,
    )
    parts: List[Adversary] = []
    workload: Optional[Adversary] = None
    if scenario.workload_factory is not None:
        workload = scenario.workload_factory(
            derive_rng(scenario.seed, "workload", scenario.name)
        )
        if telemetry is not None:
            # Workloads with admission accounting (repro.load) mirror it
            # into the metrics registry; binding never affects the rng
            # stream, so traced and untraced runs stay bit-identical.
            bind = getattr(workload, "bind_telemetry", None)
            if bind is not None:
                bind(telemetry)
        parts.append(workload)
    if scenario.fault_factory is not None:
        parts.append(
            scenario.fault_factory(
                derive_rng(scenario.seed, "faults", scenario.name),
                resolved_partitions,
                scenario.n,
            )
        )
    adversary: Adversary = ComposedAdversary(parts)
    spec = scenario.fault_spec()
    tspec = scenario.targeted_spec()
    fault_plane: Optional[FaultPlane] = None
    if tspec is not None:
        # Targeted layer composes with (a possibly null) oblivious spec;
        # the policy's tracking state is fed by the injection tap below.
        fault_plane = TargetedFaultPlane(
            scenario.seed,
            spec if spec is not None else FaultSpec(),
            tspec,
            scenario.n,
            telemetry=telemetry,
            message_keyed=scenario.chaos_keyed,
        )
    elif spec is not None:
        # The plane's schedule is keyed on the scenario seed alone, so
        # "same seed => same fault schedule" holds across builders and at
        # any --jobs setting.
        fault_plane = ChaosFaultPlane(
            scenario.seed,
            spec,
            scenario.n,
            telemetry=telemetry,
            message_keyed=scenario.chaos_keyed,
        )
    all_observers: List[SimObserver] = [
        resolved_delivery, confidentiality, *observers
    ]
    if tspec is not None:
        all_observers.append(TargetedInjectionTap(fault_plane))
    if scenario.failfast == "confidentiality":
        all_observers.append(FailFastMonitor(confidentiality))
    elif scenario.failfast == "qod":
        all_observers.append(
            FailFastMonitor(confidentiality, delivery=resolved_delivery)
        )
    engine = Engine(
        n=scenario.n,
        node_factory=node_factory,
        adversary=adversary,
        observers=all_observers,
        seed=scenario.seed,
        fault_plane=fault_plane,
    )
    engine.run(scenario.rounds)
    qod = resolved_delivery.report(engine)
    return RunResult(
        scenario=scenario,
        engine=engine,
        stats=engine.stats,
        qod=qod,
        confidentiality=confidentiality,
        delivery=resolved_delivery,
        workload=workload,
        partition_set=resolved_partitions,
        fault_plane=fault_plane,
    )
