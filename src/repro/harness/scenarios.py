"""Canonical scenario builders used by tests, examples and benches.

Every scenario leaves a *warmup* (one deadline's worth of rounds with no
injections, so Proxy/GroupDistribution uptime requirements are met and
deliveries go through the pipeline rather than the fallback) and a
*drain* (injections stop early enough that every rumor's deadline falls
inside the run, so the QoD report judges all of them).
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Optional, Sequence

from repro.adversary.adaptive import (
    GroupKillerAdversary,
    ProxyKillerAdversary,
    SourceKillerAdversary,
)
from repro.adversary.injection import (
    BurstWorkload,
    GroupTrafficWorkload,
    ScriptedWorkload,
    SteadyWorkload,
    Theorem1Workload,
)
from repro.adversary.patterns import AlternatingPartitionFaults
from repro.adversary.random_crash import ChurnAdversary
from repro.chaos.spec import FaultSpec
from repro.chaos.targeted import TargetedSpec
from repro.core.config import CongosParams
from repro.core.deadlines import goes_direct
from repro.harness.runner import Scenario
from repro.load.admission import AdmissionPolicy
from repro.load.arrivals import ArrivalSpec
from repro.load.workload import OpenWorkload

__all__ = [
    "injection_window",
    "open_window",
    "steady_scenario",
    "open_scenario",
    "chaos_scenario",
    "targeted_scenario",
    "direct_scenario",
    "churn_scenario",
    "proxy_killer_scenario",
    "group_killer_scenario",
    "source_killer_scenario",
    "rolling_blackout_scenario",
    "burst_scenario",
    "scripted_burst_scenario",
    "theorem1_scenario",
    "collusion_scenario",
    "BUILDERS",
    "get_builder",
    "builder_name",
    "register_builder",
]


def injection_window(rounds: int, deadline: int) -> tuple:
    """(start, stop) rounds for injections: warmup + drain margins."""
    start = min(deadline, max(1, rounds // 4))
    stop = max(start + 1, rounds - deadline - 4)
    return start, stop


def open_window(rounds: int, max_deadline: int, max_wait: int) -> tuple:
    """(start, stop) rounds for *arrivals* in an open scenario.

    Like :func:`injection_window`, but the drain margin also covers the
    admission queue: an arrival accepted at ``stop - 1`` may wait up to
    ``max_wait`` rounds before injection, and its deadline must still
    fall inside the run so the QoD report judges it.
    """
    start = min(max_deadline, max(1, rounds // 4))
    stop = max(start + 1, rounds - max_deadline - max_wait - 4)
    return start, stop


def open_scenario(
    n: int,
    rounds: int,
    seed: int,
    process: str = "poisson",
    rate: float = 2.0,
    burst_on: int = 16,
    burst_off: int = 48,
    off_rate: float = 0.0,
    period: int = 96,
    dest_size: int = 3,
    zipf_groups: int = 0,
    zipf_s: float = 1.1,
    deadline: int = 64,
    deadlines: Optional[Sequence[int]] = None,
    deadline_weights: Optional[Sequence[float]] = None,
    payload_size: int = 16,
    per_round: Optional[int] = None,
    queue_cap: int = 256,
    max_wait: Optional[int] = None,
    preset: Optional[str] = None,
    failfast: Optional[str] = "confidentiality",
    params: Optional[CongosParams] = None,
    name: str = "open",
) -> Scenario:
    """Open-workload traffic: a seeded arrival process behind admission
    control (E20).

    Arrivals follow ``process`` (``"poisson"``/``"bursty"``/``"diurnal"``
    — see :class:`repro.load.arrivals.ArrivalSpec`) at peak mean ``rate``
    per round, optionally skewed to hotspot destination blocks
    (``zipf_groups``/``zipf_s``) and mixing ``deadlines`` (weighted by
    ``deadline_weights``; ``deadline`` is shorthand for a single-deadline
    mix).  A bounded admission queue (``queue_cap``) levels the stream
    into the per-round injection budget ``per_round`` (default: the
    :meth:`~repro.core.config.CongosParams.injection_budget` core hook),
    shedding arrivals that would wait longer than ``max_wait`` rounds
    (default: half the shortest deadline).  ``preset`` names a
    :meth:`CongosParams.preset` so sweep cells stay JSON-representable;
    an explicit ``params`` object wins.  Confidentiality is fail-fast by
    default — overload may shed, it must never leak.
    """
    if params is not None:
        resolved = params
    elif preset is not None:
        resolved = CongosParams.preset(preset)
    else:
        resolved = CongosParams()
    spec = ArrivalSpec(
        process=process,
        rate=rate,
        burst_on=burst_on,
        burst_off=burst_off,
        off_rate=off_rate,
        period=period,
        dest_size=dest_size,
        zipf_groups=zipf_groups,
        zipf_s=zipf_s,
        deadlines=tuple(deadlines) if deadlines is not None else (deadline,),
        deadline_weights=(
            tuple(deadline_weights) if deadline_weights is not None else None
        ),
        payload_size=payload_size,
    )
    resolved_wait = (
        max_wait if max_wait is not None else max(2, spec.min_deadline // 2)
    )
    policy = AdmissionPolicy(
        per_round=per_round, queue_cap=queue_cap, max_wait=resolved_wait
    )
    budget = (
        per_round if per_round is not None else resolved.injection_budget(n)
    )
    start, stop = open_window(rounds, spec.max_deadline, resolved_wait)

    def workload(rng: random.Random) -> OpenWorkload:
        return OpenWorkload(
            n=n,
            rng=rng,
            spec=spec,
            policy=policy,
            budget=budget,
            start_round=start,
            stop_round=stop,
        )

    return Scenario(
        name=name,
        n=n,
        rounds=rounds,
        seed=seed,
        params=resolved,
        workload_factory=workload,
        failfast=failfast,
        description=(
            "open {} arrivals rate={}/round, budget={}/round, queue<={}, "
            "max_wait={}".format(
                process, rate, budget, queue_cap, resolved_wait
            )
        ),
    )


def steady_scenario(
    n: int,
    rounds: int,
    seed: int,
    deadline: int = 128,
    rate: int = 1,
    period: int = 4,
    dest_size: int = 4,
    params: Optional[CongosParams] = None,
    name: str = "steady",
) -> Scenario:
    """Fault-free steady traffic: the baseline happy path."""
    resolved = params if params is not None else CongosParams()
    start, stop = injection_window(rounds, deadline)

    def workload(rng: random.Random) -> SteadyWorkload:
        return SteadyWorkload(
            n=n,
            rng=rng,
            rate=rate,
            period=period,
            dest_size=dest_size,
            deadlines=(deadline,),
            start_round=start,
            stop_round=stop,
        )

    return Scenario(
        name=name,
        n=n,
        rounds=rounds,
        seed=seed,
        params=resolved,
        workload_factory=workload,
        description="fault-free steady injections, deadline={}".format(deadline),
    )


def chaos_scenario(
    n: int,
    rounds: int,
    seed: int,
    # Above direct_send_threshold by default, so chaos exercises the full
    # proxy/GD/gossip pipeline rather than only direct sends.
    deadline: int = 64,
    rate: int = 1,
    period: int = 4,
    dest_size: int = 4,
    drop: float = 0.0,
    delay: float = 0.0,
    max_delay: int = 4,
    duplicate: float = 0.0,
    reorder: float = 0.0,
    partition_period: int = 0,
    partition_width: int = 0,
    churn: float = 0.0,
    hardened: bool = False,
    failfast: Optional[str] = "confidentiality",
    params: Optional[CongosParams] = None,
    name: str = "chaos",
) -> Scenario:
    """Steady traffic over a faulty network (beyond the paper's model).

    The chaos fault plane drops/delays/duplicates/reorders messages and
    cuts scheduled partitions, all keyed deterministically on ``seed``;
    ``churn`` optionally composes a CRRI crash/restart adversary on top,
    demonstrating that the plane and the paper's adversary stack cleanly.
    ``hardened`` turns on the graceful-degradation knobs
    (:meth:`CongosParams.hardened`).  Confidentiality is monitored
    fail-fast by default — loss must never leak ``z`` — while QoD is
    reported, not fatal (it is *expected* to degrade beyond the model;
    pass ``failfast="qod"`` to make misses fatal too).
    """
    resolved = params if params is not None else CongosParams()
    if hardened:
        resolved = resolved.hardened()
    base = steady_scenario(
        n, rounds, seed, deadline, rate, period, dest_size, resolved, name
    )
    if churn:
        def faults(rng: random.Random, partitions, n_: int) -> ChurnAdversary:
            return ChurnAdversary(
                rng=rng,
                p_crash=churn,
                p_restart=0.25,
                min_alive=max(2, n // 4),
            )

        base.fault_factory = faults
    spec = FaultSpec(
        drop=drop,
        delay=delay,
        max_delay=max_delay,
        duplicate=duplicate,
        reorder=reorder,
        partition_period=partition_period,
        partition_width=partition_width,
    )
    base.chaos = spec.to_dict()
    base.failfast = failfast
    base.description = (
        "chaos drop={} delay={} dup={} reorder={} partition={}/{} churn={}"
        "{}".format(
            drop,
            delay,
            duplicate,
            reorder,
            partition_width,
            partition_period,
            churn,
            " [hardened]" if hardened else "",
        )
    )
    return base


def targeted_scenario(
    n: int,
    rounds: int,
    seed: int,
    policy: str = "proxy-suppressor",
    per_round: int = 4,
    total: int = 64,
    kind: str = "drop",
    hold: int = 4,
    window: int = 8,
    blind: bool = False,
    track_src: Optional[int] = None,
    retarget: bool = True,
    deadline: Optional[int] = None,
    rate: int = 1,
    period: int = 4,
    dest_size: int = 4,
    drop: float = 0.0,
    delay: float = 0.0,
    max_delay: int = 4,
    duplicate: float = 0.0,
    reorder: float = 0.0,
    partition_period: int = 0,
    partition_width: int = 0,
    churn: float = 0.0,
    hardened: bool = False,
    failfast: Optional[str] = "confidentiality",
    params: Optional[CongosParams] = None,
    name: str = "targeted",
) -> Scenario:
    """Steady traffic under a budgeted rumor-aware adversary (E19).

    Layers a :class:`~repro.chaos.targeted.TargetedFaultPolicy` over the
    (by default null) oblivious chaos spec: the policy watches leak-safe
    routing metadata and spends a per-destination fault budget on the
    tracked rumor's worst-case edges.  ``blind=True`` is the
    matched-budget oblivious baseline — same budget and stage shape,
    rumor-blind targeting.  The deadline defaults to the pipeline path
    (64), except for ``fallback-herder`` which needs the direct-send
    path's acks and defaults to 32; combine that policy with
    ``hardened=True`` for a non-vacuous attack (paper defaults send no
    acks, so there is nothing to herd).
    """
    if deadline is None:
        deadline = 32 if policy == "fallback-herder" else 64
    base = chaos_scenario(
        n,
        rounds,
        seed,
        deadline=deadline,
        rate=rate,
        period=period,
        dest_size=dest_size,
        drop=drop,
        delay=delay,
        max_delay=max_delay,
        duplicate=duplicate,
        reorder=reorder,
        partition_period=partition_period,
        partition_width=partition_width,
        churn=churn,
        hardened=hardened,
        failfast=failfast,
        params=params,
        name=name,
    )
    base.targeted = TargetedSpec(
        policy=policy,
        per_round=per_round,
        total=total,
        kind=kind,
        hold=hold,
        window=window,
        blind=blind,
        track_src=track_src,
        retarget=retarget,
    ).to_dict()
    base.description = (
        "targeted {} budget {}/{} per dst ({}){}{}; oblivious drop={} "
        "delay={}".format(
            policy,
            per_round,
            total,
            kind,
            " [blind]" if blind else "",
            " [hardened]" if hardened else "",
            drop,
            delay,
        )
    )
    return base


def direct_scenario(
    n: int,
    rounds: int,
    seed: int,
    # At or below direct_send_threshold (48), so every rumor takes the
    # direct-send route and nothing rides the proxy/GD/gossip pipeline.
    deadline: int = 32,
    rate: int = 1,
    period: int = 2,
    dest_size: int = 4,
    drop: float = 0.0,
    delay: float = 0.0,
    max_delay: int = 4,
    duplicate: float = 0.0,
    reorder: float = 0.0,
    hardened: bool = False,
    failfast: Optional[str] = "confidentiality",
    params: Optional[CongosParams] = None,
    name: str = "direct",
) -> Scenario:
    """Short-deadline traffic over a faulty network: the direct-send path
    in isolation (E16).

    Every injected rumor's deadline is at or below
    ``direct_send_threshold``, so the run exercises *only* the source's
    direct sends — one unacknowledged copy per destination at default
    parameters, or the ack/retransmit/k-copy reliability layer under
    ``hardened`` (:meth:`CongosParams.preset` ``"hardened"``).  Builders
    reject deadlines that would route through the pipeline, so matrix
    cells measure exactly the path they claim to.
    """
    resolved = params if params is not None else CongosParams()
    if hardened:
        resolved = resolved.hardened()
    if not goes_direct(deadline, resolved, n):
        raise ValueError(
            "deadline {} routes through the pipeline (threshold {}); the "
            "direct scenario must stay on the direct-send path".format(
                deadline, resolved.direct_send_threshold
            )
        )
    base = chaos_scenario(
        n,
        rounds,
        seed,
        deadline=deadline,
        rate=rate,
        period=period,
        dest_size=dest_size,
        drop=drop,
        delay=delay,
        max_delay=max_delay,
        duplicate=duplicate,
        reorder=reorder,
        failfast=failfast,
        params=resolved,
        name=name,
    )
    base.description = (
        "direct-send path only: deadline={} drop={} delay={} dup={} "
        "reorder={}{}".format(
            deadline,
            drop,
            delay,
            duplicate,
            reorder,
            " [hardened]" if hardened else "",
        )
    )
    return base


def churn_scenario(
    n: int,
    rounds: int,
    seed: int,
    deadline: int = 128,
    p_crash: float = 0.01,
    p_restart: float = 0.2,
    rate: int = 1,
    period: int = 4,
    dest_size: int = 4,
    immune: Sequence[int] = (),
    params: Optional[CongosParams] = None,
    name: str = "churn",
) -> Scenario:
    """Random crash/restart churn on top of steady traffic."""
    base = steady_scenario(
        n, rounds, seed, deadline, rate, period, dest_size, params, name
    )

    def faults(rng: random.Random, partitions, n_: int) -> ChurnAdversary:
        return ChurnAdversary(
            rng=rng,
            p_crash=p_crash,
            p_restart=p_restart,
            immune=immune,
            min_alive=max(2, n // 4),
        )

    base.fault_factory = faults
    base.description = "churn p_crash={} p_restart={}".format(p_crash, p_restart)
    return base


def proxy_killer_scenario(
    n: int,
    rounds: int,
    seed: int,
    deadline: int = 128,
    budget_per_round: Optional[int] = None,
    total_budget: Optional[int] = None,
    restart_after: Optional[int] = None,
    params: Optional[CongosParams] = None,
    name: str = "proxy-killer",
) -> Scenario:
    """The adaptive proxy-killing attack of Section 1 / Lemma 8.

    Budgets default to system-size-proportional values with restarts, so
    the attack is sustained pressure rather than instant extinction.
    """
    base = steady_scenario(
        n, rounds, seed, deadline, rate=1, period=8, dest_size=3, params=params, name=name
    )
    per_round = budget_per_round if budget_per_round is not None else max(1, n // 8)
    total = total_budget if total_budget is not None else max(2, n // 3)
    revive = restart_after if restart_after is not None else deadline // 2

    def faults(rng: random.Random, partitions, n_: int) -> ProxyKillerAdversary:
        return ProxyKillerAdversary(
            budget_per_round=per_round,
            total_budget=total,
            restart_after=revive,
        )

    base.fault_factory = faults
    base.description = "adaptive proxy killer, budget {}/{}".format(
        budget_per_round, total_budget
    )
    return base


def group_killer_scenario(
    n: int,
    rounds: int,
    seed: int,
    deadline: int = 128,
    partition: int = 0,
    group: int = 0,
    crash_round: Optional[int] = None,
    params: Optional[CongosParams] = None,
    name: str = "group-killer",
) -> Scenario:
    """Wipe out one group of one partition mid-run (Lemma 5's motivation).

    The sources/destinations are not spared on purpose: admissibility does
    the bookkeeping, and the surviving partitions must carry the rest.
    """
    base = steady_scenario(
        n, rounds, seed, deadline, rate=1, period=8, dest_size=3, params=params, name=name
    )
    when = crash_round if crash_round is not None else rounds // 2

    def faults(rng: random.Random, partitions, n_: int) -> GroupKillerAdversary:
        members = partitions.members(partition, group)
        return GroupKillerAdversary(
            members=set(members),
            crash_round=when,
            restart_round=min(rounds - 1, when + deadline),
        )

    base.fault_factory = faults
    base.description = "kill group {} of partition {} at round {}".format(
        group, partition, when
    )
    return base


def source_killer_scenario(
    n: int,
    rounds: int,
    seed: int,
    deadline: int = 128,
    kill_probability: float = 0.5,
    params: Optional[CongosParams] = None,
    name: str = "source-killer",
) -> Scenario:
    """Sources die right after injecting (inadmissible rumors)."""
    base = steady_scenario(
        n, rounds, seed, deadline, rate=1, period=8, dest_size=3, params=params, name=name
    )

    def faults(rng: random.Random, partitions, n_: int) -> SourceKillerAdversary:
        return SourceKillerAdversary(rng=rng, kill_probability=kill_probability)

    base.fault_factory = faults
    base.description = "kill sources after injection (p={})".format(kill_probability)
    return base


def rolling_blackout_scenario(
    n: int,
    rounds: int,
    seed: int,
    deadline: int = 128,
    blocks: int = 4,
    immune: Sequence[int] = (0, 1),
    params: Optional[CongosParams] = None,
    name: str = "rolling-blackout",
) -> Scenario:
    """A quarter of the system is always down, rotating every period.

    Only ``immune`` processes stay continuously alive; traffic is between
    them, so their rumors remain admissible throughout.
    """
    resolved = params if params is not None else CongosParams()
    start, stop = injection_window(rounds, deadline)
    immune_list = list(immune)

    def workload(rng: random.Random) -> GroupTrafficWorkload:
        return GroupTrafficWorkload(
            participants=immune_list,
            rng=rng,
            deadline=deadline,
            period=8,
            start_round=start,
            stop_round=stop,
        )

    def faults(rng: random.Random, partitions, n_: int) -> AlternatingPartitionFaults:
        return AlternatingPartitionFaults(
            n=n,
            blocks=blocks,
            period=max(blocks * 4, deadline // 2),
            immune=immune_list,
        )

    return Scenario(
        name=name,
        n=n,
        rounds=rounds,
        seed=seed,
        params=resolved,
        workload_factory=workload,
        fault_factory=faults,
        description="rotating blackout of 1/{} of the system".format(blocks),
    )


def burst_scenario(
    n: int,
    rounds: int,
    seed: int,
    deadline: int = 128,
    bursts: int = 2,
    dest_size: int = 4,
    params: Optional[CongosParams] = None,
    name: str = "burst",
) -> Scenario:
    """Every process injects simultaneously, a few times."""
    resolved = params if params is not None else CongosParams()
    start, stop = injection_window(rounds, deadline)
    gap = max(1, (stop - start) // max(1, bursts))
    burst_rounds = [start + i * gap for i in range(bursts)]

    def workload(rng: random.Random) -> BurstWorkload:
        return BurstWorkload(
            n=n,
            rng=rng,
            burst_rounds=burst_rounds,
            dest_size=dest_size,
            deadline=deadline,
        )

    return Scenario(
        name=name,
        n=n,
        rounds=rounds,
        seed=seed,
        params=resolved,
        workload_factory=workload,
        description="full-system bursts at {}".format(burst_rounds),
    )


def scripted_burst_scenario(
    n: int,
    rounds: int,
    seed: int,
    deadline: int = 128,
    sources: int = 8,
    inject_round: Optional[int] = None,
    offsets: Sequence[int] = (5, 9),
    params: Optional[CongosParams] = None,
    name: str = "scripted-burst",
) -> Scenario:
    """A fixed-size simultaneous burst with deterministic destinations.

    ``sources`` processes inject at the same round, each to the two
    destinations ``(src + offsets[i]) % n`` — a constant in-flight rumor
    population, which is what deadline-dependence experiments (E6b) need:
    a fixed *arrival rate* would conflate longer deadlines with more
    concurrent rumors.
    """
    resolved = params if params is not None else CongosParams()
    when = (
        inject_round
        if inject_round is not None
        else max(1, min(2 * deadline, rounds // 2))
    )
    script = [
        (when, src, deadline, {(src + offset) % n for offset in offsets})
        for src in range(sources)
    ]

    def workload(rng: random.Random) -> ScriptedWorkload:
        return ScriptedWorkload(script, rng)

    return Scenario(
        name=name,
        n=n,
        rounds=rounds,
        seed=seed,
        params=resolved,
        workload_factory=workload,
        description="{}-source burst at round {}, deadline={}".format(
            sources, when, deadline
        ),
    )


def theorem1_scenario(
    n: int,
    rounds: int,
    seed: int,
    c: int = 8,
    dmax: int = 128,
    inject_round: Optional[int] = None,
    params: Optional[CongosParams] = None,
    name: str = "theorem1",
) -> Scenario:
    """The oblivious lower-bound layout of Theorems 1/12."""
    resolved = params if params is not None else CongosParams()
    when = inject_round if inject_round is not None else min(dmax, rounds // 4)

    def workload(rng: random.Random) -> Theorem1Workload:
        return Theorem1Workload(
            n=n, rng=rng, c=c, dmax=dmax, inject_round=when
        )

    return Scenario(
        name=name,
        n=n,
        rounds=rounds,
        seed=seed,
        params=resolved,
        workload_factory=workload,
        description="Theorem-1 layout: c={}, dmax={}".format(c, dmax),
    )


def collusion_scenario(
    n: int,
    rounds: int,
    seed: int,
    tau: int,
    deadline: int = 128,
    rate: int = 1,
    period: int = 8,
    dest_size: int = 4,
    params: Optional[CongosParams] = None,
    name: Optional[str] = None,
) -> Scenario:
    """Steady traffic under the collusion-tolerant variant (Section 6.2)."""
    resolved = (
        params.with_tau(tau) if params is not None else CongosParams(tau=tau)
    )
    return steady_scenario(
        n=n,
        rounds=rounds,
        seed=seed,
        deadline=deadline,
        rate=rate,
        period=period,
        dest_size=dest_size,
        params=resolved,
        name=name if name is not None else "collusion-tau{}".format(tau),
    )


# ----------------------------------------------------------------------
# Builder registry
# ----------------------------------------------------------------------
#
# The exec subsystem ships scenarios across process boundaries as
# *names* (a builder callable is not reliably picklable); everything a
# RunSpec can run must be registered here.  The CLI's ``run``/``sweep``
# commands and ``scenarios`` listing read the same table.

ScenarioBuilder = Callable[..., Scenario]

BUILDERS: Dict[str, ScenarioBuilder] = {
    "open": open_scenario,
    "steady": steady_scenario,
    "chaos": chaos_scenario,
    "targeted": targeted_scenario,
    "direct": direct_scenario,
    "churn": churn_scenario,
    "proxy-killer": proxy_killer_scenario,
    "group-killer": group_killer_scenario,
    "source-killer": source_killer_scenario,
    "rolling-blackout": rolling_blackout_scenario,
    "burst": burst_scenario,
    "scripted-burst": scripted_burst_scenario,
    "theorem1": theorem1_scenario,
    "collusion": collusion_scenario,
}


def register_builder(
    name: str, builder: ScenarioBuilder, replace: bool = False
) -> None:
    """Add a builder to the registry (tests and extensions hook in here)."""
    if not replace and name in BUILDERS and BUILDERS[name] is not builder:
        raise ValueError("builder {!r} is already registered".format(name))
    BUILDERS[name] = builder


def get_builder(name: str) -> ScenarioBuilder:
    try:
        return BUILDERS[name]
    except KeyError:
        raise KeyError(
            "unknown scenario builder {!r}; registered: {}".format(
                name, ", ".join(sorted(BUILDERS))
            )
        ) from None


def builder_name(builder: ScenarioBuilder) -> str:
    """Reverse registry lookup (identity), for callable convenience APIs."""
    for name, registered in BUILDERS.items():
        if registered is builder:
            return name
    raise KeyError(
        "builder {!r} is not registered in repro.harness.scenarios.BUILDERS; "
        "register it (register_builder) or pass its registry name".format(builder)
    )
