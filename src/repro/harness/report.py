"""Plain-text table/series rendering for benches and EXPERIMENTS.md."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

__all__ = ["format_table", "format_kv", "banner", "ratio_series"]


def _cell(value: object) -> str:
    if isinstance(value, float):
        return "{:.3g}".format(value)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned ASCII table (monospace, EXPERIMENTS.md-friendly)."""
    rendered_rows: List[List[str]] = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError("row width {} != header width {}".format(len(row), len(headers)))
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_kv(pairs: Sequence[tuple], title: Optional[str] = None) -> str:
    """Render key/value pairs, one per line."""
    width = max((len(str(k)) for k, _ in pairs), default=0)
    lines: List[str] = []
    if title:
        lines.append(title)
    for key, value in pairs:
        lines.append("{}: {}".format(str(key).ljust(width), _cell(value)))
    return "\n".join(lines)


def banner(text: str, char: str = "=") -> str:
    """A visually separated section header for bench output."""
    rule = char * max(len(text), 8)
    return "\n{}\n{}\n{}".format(rule, text, rule)


def ratio_series(values: Sequence[float]) -> List[float]:
    """Consecutive ratios v[i+1]/v[i] (scaling diagnostics)."""
    out: List[float] = []
    for previous, current in zip(values, values[1:]):
        out.append(current / previous if previous else float("inf"))
    return out
