"""CONGOS protocol parameters.

The paper's analysis fixes large constants (the ``48`` in the fanout
exponent, deadline caps of ``c log^6 n``) so that union bounds hold for
astronomically large ``n``.  A faithful *executable* reproduction keeps
every such constant as a parameter: :meth:`CongosParams.paper_defaults`
records the literal values from the paper, while the plain constructor
defaults are calibrated for simulation at ``n <= 512`` so that the *shape*
of the complexity claims is measurable (see DESIGN.md, Section 2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, Optional

__all__ = ["CongosParams", "default_deadline_cap"]


def default_deadline_cap(n: int, constant: float = 1.0) -> int:
    """The paper's deadline cap ``c * log^6 n`` (Section 4.2)."""
    if n < 2:
        return 1
    return max(4, int(constant * math.log2(n) ** 6))


@dataclass(frozen=True)
class CongosParams:
    """All tunables of the CONGOS protocol stack.

    Attributes
    ----------
    tau:
        Collusion tolerance.  ``tau=1`` is the base algorithm of Section 4
        (the paper views it as "a collusion of a process with itself"):
        two groups per partition, ``log n`` bit partitions.  ``tau >= 2``
        switches to the Section 6 variant: ``tau+1`` groups per partition
        and ``~ c tau log n`` random partitions.
    fanout_exponent_constant:
        The ``48`` of ``Theta(n^{1+48/sqrt(dline)} log n / |collab|)``.
    fanout_scale, min_fanout:
        Multiplier / floor applied to the per-process fanout formula.
    gossip_fanout_scale:
        Fanout multiplier of the continuous-gossip substrate
        (``ceil(scale * log2(group))`` targets per round).
    gossip_schedule:
        ``"random"`` or ``"expander"`` for the gossip substrate.
    gossip_reliable:
        Whether substrate instances flush at expiry (probability-1 delivery
        inside the black box; CONGOS does not need it thanks to its own
        fallback, so the default is off).
    direct_send_threshold:
        Rumors with deadlines at or below this are sent directly by their
        source (Section 5 assumes ``dline > 48``).
    deadline_cap:
        Upper trim for deadlines; ``None`` means "use c*log^6 n", which at
        simulation scale never binds.
    partition_count_constant:
        The ``c`` of the ``c tau log n`` random partitions (Section 6.2).
    gd_target_pool:
        ``"destinations"`` (default): GroupDistribution samples targets
        from the not-yet-hit destinations of its fragments — the
        reconciliation described in DESIGN.md that makes confirmation
        sound.  ``"group"`` reproduces the paper's literal rule (uniform
        over the opposite group, possibly sending empty messages).
    fallback_scope:
        ``"all"`` (the paper's main rule): an unconfirmed rumor is shot to
        its whole destination set at the deadline.  ``"unconfirmed"``
        implements Figure 2's noted optimization — shoot only destinations
        whose hit records do not already cover them in some partition.
    proxy_retransmit:
        Graceful-degradation knob (chaos runs): how many extra times an
        iteration's unacknowledged proxy requests are re-sent (to fresh
        proxy samples) at exponentially spaced positions within the same
        iteration.  ``0`` (default) is the paper's send-once rule.
    gd_redundancy:
        Graceful-degradation knob: a ``(destination, rid)`` pair counts as
        *hit* only after GroupDistribution has sent it ``gd_redundancy``
        times.  ``1`` (default) is the paper's optimistic first-send rule
        and reproduces its random draws exactly.
    fallback_early_fraction:
        Graceful-degradation knob: the source shoots unconfirmed rumors at
        ``injection + ceil(fraction * dline)`` instead of the full
        deadline, trading message complexity for QoD under loss.  ``1.0``
        (default) is the paper's deadline-exact fallback.
    gossip_resend_backoff:
        Graceful-degradation knob: when set, continuous-gossip items past
        the substrate's resend horizon are rebroadcast at exponentially
        spaced ages until expiry, instead of going silent.  Off by default
        (the paper's substrate stops re-sending after the horizon).
    direct_send_retries:
        Graceful-degradation knob for the direct-send path (deadline <=
        ``direct_send_threshold`` or Theorem 16 case 1): how many times an
        unacknowledged direct copy may be retransmitted, at exponentially
        backed-off positions before the deadline.  ``0`` (default) is the
        paper's single unacknowledged send.
    direct_send_ack:
        Direct-send knob: destinations acknowledge received direct copies
        (rumor id + acker pid only — never payload bytes), letting the
        source stop retransmitting to destinations that already hold the
        rumor.  Off by default; without acks, retransmits and extra
        copies go to the full destination set.
    direct_send_copies:
        Direct-send knob: send each short-deadline rumor ``k`` times,
        spread evenly over the rounds remaining before its deadline.
        ``1`` (default) is the paper's single send.
    """

    tau: int = 1
    fanout_exponent_constant: float = 2.0
    fanout_scale: float = 0.5
    min_fanout: int = 2
    gossip_fanout_scale: float = 2.0
    gossip_schedule: str = "random"
    gossip_reliable: bool = False
    direct_send_threshold: int = 48
    deadline_cap: Optional[int] = None
    deadline_cap_constant: float = 1.0
    partition_count_constant: float = 1.0
    gd_target_pool: str = "destinations"
    collusion_direct_factor: float = 4.0
    fallback_scope: str = "all"
    proxy_retransmit: int = 0
    gd_redundancy: int = 1
    fallback_early_fraction: float = 1.0
    gossip_resend_backoff: bool = False
    direct_send_retries: int = 0
    direct_send_ack: bool = False
    direct_send_copies: int = 1

    def __post_init__(self) -> None:
        if self.tau < 1:
            raise ValueError("tau must be >= 1")
        if self.fanout_exponent_constant < 0:
            raise ValueError("fanout exponent constant must be non-negative")
        if self.fanout_scale <= 0:
            raise ValueError("fanout scale must be positive")
        if self.min_fanout < 1:
            raise ValueError("min_fanout must be >= 1")
        if self.gossip_schedule not in ("random", "expander"):
            raise ValueError("gossip_schedule must be 'random' or 'expander'")
        if self.direct_send_threshold < 1:
            raise ValueError("direct_send_threshold must be >= 1")
        if self.gd_target_pool not in ("destinations", "group"):
            raise ValueError("gd_target_pool must be 'destinations' or 'group'")
        if self.deadline_cap is not None and self.deadline_cap < 4:
            raise ValueError("deadline_cap must be >= 4")
        if self.fallback_scope not in ("all", "unconfirmed"):
            raise ValueError("fallback_scope must be 'all' or 'unconfirmed'")
        if self.proxy_retransmit < 0:
            raise ValueError("proxy_retransmit must be non-negative")
        if self.gd_redundancy < 1:
            raise ValueError("gd_redundancy must be >= 1")
        if not 0.0 < self.fallback_early_fraction <= 1.0:
            raise ValueError("fallback_early_fraction must be in (0, 1]")
        if self.direct_send_retries < 0:
            raise ValueError("direct_send_retries must be non-negative")
        if self.direct_send_copies < 1:
            raise ValueError("direct_send_copies must be >= 1")

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------

    @property
    def num_groups(self) -> int:
        """Groups per partition: ``tau + 1`` (Section 6.2)."""
        return self.tau + 1

    @property
    def direct_send_reliable(self) -> bool:
        """Whether any direct-send reliability machinery is enabled.

        False for default parameters — the coordinator then never builds
        per-rumor send state, so paper-exact runs stay bit-identical.
        """
        return (
            self.direct_send_ack
            or self.direct_send_retries > 0
            or self.direct_send_copies > 1
        )

    def effective_deadline_cap(self, n: int) -> int:
        if self.deadline_cap is not None:
            return self.deadline_cap
        return default_deadline_cap(n, self.deadline_cap_constant)

    def service_fanout(self, n: int, dline: int, collaborators: int) -> int:
        """Per-process targets for Proxy / GroupDistribution sends.

        Implements ``Theta(n^{1+C/sqrt(dline)} log n / |collaborators|)``
        from Figures 3/4, with ``C = fanout_exponent_constant`` and the
        ``Theta`` constant ``fanout_scale``.
        """
        if dline < 1:
            raise ValueError("dline must be positive")
        collab = max(1, collaborators)
        exponent = 1.0 + self.fanout_exponent_constant / math.sqrt(dline)
        total = self.fanout_scale * (n ** exponent) * max(1.0, math.log2(max(2, n)))
        return max(self.min_fanout, math.ceil(total / collab))

    def proxy_uptime(self, dline: int) -> int:
        """Continuous uptime the Proxy service requires (a block)."""
        return dline // 4

    def gd_uptime(self, dline: int) -> int:
        """Continuous uptime GroupDistribution requires (2*dline/3)."""
        return (2 * dline) // 3

    def injection_budget(self, n: int) -> int:
        """Sustainable per-round injection budget for open workloads.

        The cost of a round grows with the number of *concurrent* rumors
        (each drives its own proxy/GD fanout), and a rumor stays live for
        up to its deadline — so admitting ``b`` rumors per round holds
        roughly ``b * dline`` in flight.  ``n/32`` keeps that population
        a small fraction of the system at the deadlines the simulations
        use (calibrated like the other constants in this module for
        ``n <= 512``; it is a default, not a cap — admission policies may
        override ``per_round`` explicitly).  Floor of 1 so small systems
        still make progress.
        """
        if n < 2:
            raise ValueError("injection budgets need at least two processes")
        return max(1, n // 32)

    def collusion_forces_direct(self, n: int) -> bool:
        """Theorem 16 case 1: if ``tau >= n / log^2 n``, send directly.

        The rule belongs to the Section-6 collusion-tolerant variant; the
        base algorithm (``tau = 1``) always runs the pipeline.

        ``collusion_direct_factor`` relaxes the threshold to
        ``tau >= factor * n / log^2 n``: the paper's constant (1) makes
        every tau >= 2 direct below n ~ 128, which is the regime all
        simulations live in; any constant preserves the asymptotics, and
        :meth:`paper_defaults` restores the literal 1.
        """
        if self.tau == 1:
            return False
        if n < 2:
            return True
        threshold = self.collusion_direct_factor * n / (math.log2(n) ** 2)
        return self.tau >= threshold

    def partition_count(self, n: int) -> int:
        """Number of partitions to use.

        ``ceil(log2 n)`` bit partitions in the base algorithm; about
        ``c * tau * log n`` random partitions in collusion mode.
        """
        log_n = max(1, math.ceil(math.log2(max(2, n))))
        if self.tau == 1:
            return log_n
        return max(1, math.ceil(self.partition_count_constant * self.tau * log_n))

    # ------------------------------------------------------------------
    # Presets
    # ------------------------------------------------------------------

    @classmethod
    def preset_names(cls) -> list:
        """Registered preset names, sorted."""
        return sorted(_PRESET_FIELDS)

    @classmethod
    def preset_descriptions(cls) -> Dict[str, str]:
        """Registered preset names with one-line descriptions, sorted.

        The discovery surface behind :func:`repro.api.presets` — callers
        should not need to import ``core.config`` to learn what presets
        exist.
        """
        return {name: _PRESET_DESCRIPTIONS[name] for name in sorted(_PRESET_FIELDS)}

    @classmethod
    def preset(cls, name: str, **overrides: object) -> "CongosParams":
        """Build a parameter set from the preset registry.

        ``preset("default")`` is the plain constructor; ``"paper"`` the
        literal constants from the paper (only useful analytically — at
        simulation scale the fanout formula with ``C = 48`` saturates
        every group immediately); ``"lean"`` frugal settings for large-n
        shape sweeps; ``"hardened"`` every graceful-degradation knob on,
        including the direct-send ack/retransmit/k-copy scheme.  Keyword
        overrides are applied on top of the preset's fields.
        """
        try:
            fields = dict(_PRESET_FIELDS[name])
        except KeyError:
            raise KeyError(
                "unknown preset {!r}; registered: {}".format(
                    name, ", ".join(sorted(_PRESET_FIELDS))
                )
            ) from None
        fields.update(overrides)
        return cls(**fields)  # type: ignore[arg-type]

    @classmethod
    def paper_defaults(cls, **overrides: object) -> "CongosParams":
        """Deprecated alias for ``preset("paper", **overrides)``."""
        return cls.preset("paper", **overrides)

    @classmethod
    def lean(cls, **overrides: object) -> "CongosParams":
        """Deprecated alias for ``preset("lean", **overrides)``."""
        return cls.preset("lean", **overrides)

    def hardened(self, **overrides: object) -> "CongosParams":
        """This parameter set with the graceful-degradation knobs on.

        Deprecated alias: folds the ``"hardened"`` preset's fields into
        the current instance (``preset("hardened")`` builds the same set
        from defaults).  Meant for chaos runs (lossy/delaying networks):
        bounded proxy retransmits, doubled GD send redundancy, earlier
        fallback, gossip resend backoff, and direct-send
        ack/retransmit/k-copy.  Under the paper's reliable network these
        only add redundant traffic — correctness is unchanged.
        """
        params = replace(self, **_PRESET_FIELDS["hardened"])
        return replace(params, **overrides) if overrides else params

    def with_tau(self, tau: int) -> "CongosParams":
        return replace(self, tau=tau)


# The preset registry: every named parameter set in one place, so a new
# knob (like the direct-send reliability fields) lands in exactly one
# spot per preset.  ``CongosParams.preset`` reads this table.
_PRESET_FIELDS: Dict[str, Dict[str, object]] = {
    "default": {},
    # The literal constants from the paper.
    "paper": {
        "fanout_exponent_constant": 48.0,
        "fanout_scale": 1.0,
        "direct_send_threshold": 48,
        "deadline_cap": None,
        "deadline_cap_constant": 1.0,
        "collusion_direct_factor": 1.0,
    },
    # Frugal settings for large-n sweeps (shape experiments).
    "lean": {
        "fanout_exponent_constant": 1.0,
        "fanout_scale": 0.25,
        "min_fanout": 1,
        "gossip_fanout_scale": 1.5,
    },
    # Every graceful-degradation knob on (chaos runs).
    "hardened": {
        "proxy_retransmit": 2,
        "gd_redundancy": 2,
        "fallback_early_fraction": 0.75,
        "gossip_resend_backoff": True,
        "direct_send_retries": 3,
        "direct_send_ack": True,
        "direct_send_copies": 2,
    },
}

# One line per preset, kept in lockstep with _PRESET_FIELDS (a test
# asserts the two registries cover the same names).
_PRESET_DESCRIPTIONS: Dict[str, str] = {
    "default": "simulation-calibrated constants for n <= 512 (the plain constructor)",
    "paper": "the paper's literal constants (analytic use; fanout saturates at sim scale)",
    "lean": "frugal fanouts for large-n shape sweeps",
    "hardened": "every graceful-degradation knob on, incl. direct-send ack/retransmit/k-copy",
}
