"""Deadline trimming and protocol-instance keying (Section 4.2).

CONGOS runs one protocol instance per *deadline class*.  Deadlines are
first capped at ``c log^6 n`` ("trimming deadlines that are unnecessarily
big"), then rounded **down** to a power of two, so that rumors injected in
the same round fall into ``O(log log n)`` classes.  Neither step can miss a
deadline — a rumor delivered by its trimmed deadline is delivered by its
real one — and neither changes the asymptotic message complexity.

Rumors whose trimmed deadline does not exceed ``direct_send_threshold``
(the paper analyses ``dline > 48``) skip the pipeline entirely: the source
sends them straight to their destination set.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.config import CongosParams

__all__ = [
    "PIPELINE_FLOOR",
    "round_down_power_of_two",
    "trim_deadline",
    "pipeline_deadline",
    "goes_direct",
    "deadline_classes",
    "min_pipeline_deadline",
]

# The block pipeline needs at least one iteration per block:
# dline/4 >= sqrt(dline) + 2 first holds at the power of two 64 (Lemma 6
# assumes dline > 48).  Shorter deadlines always go the direct-send route,
# whatever the configured threshold.
PIPELINE_FLOOR = 64


def round_down_power_of_two(value: int) -> int:
    """Largest power of two that is <= ``value``."""
    if value < 1:
        raise ValueError("value must be positive")
    return 1 << (value.bit_length() - 1)


def trim_deadline(deadline: int, cap: int) -> int:
    """Apply both trims: cap at ``cap``, then round down to a power of 2."""
    if deadline < 1:
        raise ValueError("deadline must be positive")
    if cap < 1:
        raise ValueError("cap must be positive")
    return round_down_power_of_two(min(deadline, cap))


def min_pipeline_deadline(params: CongosParams) -> int:
    """Smallest trimmed deadline that runs through the pipeline.

    The smallest power of two strictly above ``direct_send_threshold``;
    with the paper's threshold of 48 this is 64, for which a block holds
    16 rounds and exactly one 10-round iteration fits (Lemma 6 needs
    ``sqrt(dline)/8 >= 1`` iterations, satisfied for dline >= 64).
    """
    threshold = params.direct_send_threshold
    from_threshold = round_down_power_of_two(threshold) * 2 if threshold >= 1 else 1
    return max(PIPELINE_FLOOR, from_threshold)


def pipeline_deadline(deadline: int, params: CongosParams, n: int) -> Optional[int]:
    """The trimmed deadline class for a rumor, or None for direct send.

    ``None`` means the deadline is too short for the block pipeline and
    the source must deliver the rumor itself (Section 5: "If it is not
    [> 48], then the desired bound can be trivially met simply by sending
    rumors directly to their destination sets by the source").
    """
    trimmed = trim_deadline(deadline, params.effective_deadline_cap(n))
    if trimmed <= params.direct_send_threshold or trimmed < PIPELINE_FLOOR:
        return None
    return trimmed


def goes_direct(deadline: int, params: CongosParams, n: int) -> bool:
    """Whether a rumor with this deadline takes the direct-send route.

    Direct-route rumors are the ones the reliable-delivery knobs
    (``direct_send_retries`` / ``direct_send_ack`` / ``direct_send_copies``)
    protect; pipeline rumors have the proxy/GD/gossip redundancy story
    instead.
    """
    return pipeline_deadline(deadline, params, n) is None


def deadline_classes(params: CongosParams, n: int) -> List[int]:
    """Every possible trimmed-deadline class, smallest first.

    There are ``O(log log n)`` of them — the powers of two between the
    pipeline minimum and the cap.
    """
    cap = params.effective_deadline_cap(n)
    smallest = min_pipeline_deadline(params)
    classes: List[int] = []
    dline = smallest
    while dline <= cap:
        classes.append(dline)
        dline *= 2
    if not classes and cap >= smallest:
        classes.append(smallest)
    return classes
