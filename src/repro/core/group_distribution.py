"""The GroupDistribution service (Figures 4, 7 and 10).

Once the fragments of a rumor have reached their groups (fragment ``g`` to
every live member of group ``g``, via GroupGossip within the group and the
Proxy across groups), each group collaborates to deliver its fragment to
the rumor's *destination set*.  Destinations thereby collect all
``tau + 1`` fragments of some partition and reassemble the rumor.

Key properties (Section 4.5):

* **[GD:CONFIDENTIAL]** — a fragment is only ever sent to members of its
  rumor's destination set (enforced here by construction).
* **[GD:CONFIRM]** — the sanitized ``hitSet`` (pairs ``(destination,
  rumor-id)``, no fragment contents) is gossiped through AllGossip only
  after the corresponding sends happened, so a source that sees its whole
  destination set covered in *every* group of some partition knows the
  rumor was delivered.

Target selection: DESIGN.md documents the reconciliation — by default we
sample from the not-yet-hit *destinations* of our fragments (both groups),
which makes the confirmation predicate satisfiable; setting
``params.gd_target_pool = "group"`` reproduces the paper's literal rule
(uniform over the opposite group, messages possibly empty).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Iterator, List, Set, Tuple

from repro.core.config import CongosParams
from repro.core.partitions import PartitionSet
from repro.core.splitting import Fragment
from repro.gossip.continuous import ContinuousGossip
from repro.gossip.rumor import RumorId
from repro.gossip.service import SubService
from repro.obs.instrument import NULL_TELEMETRY
from repro.sim.clock import BlockSchedule
from repro.sim.messages import KnowledgeAtom, Message, ServiceTags

__all__ = ["FragmentDelivery", "GDShare", "DistributionShare", "GroupDistributionService"]

WAITING = "waiting"
ACTIVE = "active"

HitEntry = Tuple[int, RumorId]  # (destination pid, rumor id)


@dataclass(frozen=True)
class FragmentDelivery:
    """Fragments sent to a destination-set member."""

    sender: int
    fragments: Tuple[Fragment, ...]

    def reveals(self) -> Iterator[KnowledgeAtom]:
        for fragment in self.fragments:
            for atom in fragment.reveals():
                yield atom


@dataclass(frozen=True)
class GDShare:
    """Per-iteration GroupGossip share: sanitized hitSet + census beacon."""

    sender: int
    hits: FrozenSet[HitEntry]
    # No reveals(): hit entries carry no rumor contents.


@dataclass(frozen=True)
class DistributionShare:
    """End-of-block AllGossip record (Figure 10 line 36).

    "fragment ``group`` for partition ``partition`` of the rumor
    associated with identifier ``rid`` was sent to ``dst``" — for every
    ``(dst, rid)`` in ``hits``.  Sources assemble these into their
    ``hitSetM`` matrix and confirm delivery (Figure 8 lines 38-46).
    """

    sender: int
    dline: int
    partition: int
    group: int
    hits: FrozenSet[HitEntry]
    # No reveals(): sanitized by construction.


class GroupDistributionService(SubService):
    """GroupDistribution[l] at one process, for one deadline class."""

    def __init__(
        self,
        pid: int,
        n: int,
        channel: str,
        dline: int,
        partition: int,
        partition_set: PartitionSet,
        params: CongosParams,
        rng: random.Random,
        gossip: ContinuousGossip,
        all_gossip: ContinuousGossip,
        on_fragments: Callable[[int, List[Fragment]], None],
        wakeup: int,
        telemetry=None,
    ):
        super().__init__(pid, n, ServiceTags.GROUP_DISTRIBUTION, channel)
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.dline = dline
        self.partition = partition
        self.partition_set = partition_set
        self.params = params
        self.rng = rng
        self.gossip = gossip
        self.all_gossip = all_gossip
        self.on_fragments = on_fragments
        self.wakeup = wakeup
        self.schedule = BlockSchedule(dline)
        self.my_group = partition_set.group_of(partition, pid)

        self.status = WAITING
        self.waiting: Dict[Tuple, Fragment] = {}
        self.partials: Dict[Tuple, Fragment] = {}
        self.hit_set: Set[HitEntry] = set()
        # Degradation bookkeeping: sends per (dst, rid) this block.  An
        # entry joins hit_set after params.gd_redundancy sends; with the
        # default redundancy of 1 this reduces to the paper's optimistic
        # first-send rule.
        self._send_counts: Dict[HitEntry, int] = {}
        self.collaborators: Set[int] = {pid}
        self._collaborators_next: Set[int] = set()

        # Run statistics.
        self.fragments_sent = 0
        self.blocks_active = 0
        self.shares_published = 0

    # ------------------------------------------------------------------
    # Upstream API
    # ------------------------------------------------------------------

    def add_waiting(self, round_no: int, fragment: Fragment) -> None:
        """Queue a fragment of *this* group for next-block distribution."""
        if fragment.group != self.my_group:
            raise ValueError(
                "GroupDistribution[{}] of group {} given fragment of group "
                "{}".format(self.partition, self.my_group, fragment.group)
            )
        if not fragment.expired(round_no):
            self.waiting.setdefault(fragment.uid, fragment)

    def on_share(self, round_no: int, share: GDShare) -> None:
        """A GDShare delivered by GroupGossip[l] (same group only)."""
        self._collaborators_next.add(share.sender)
        self.hit_set.update(share.hits)

    def catch_up(self, round_no: int) -> None:
        """Initialise block state for a service instantiated mid-block.

        See :meth:`repro.core.proxy.ProxyService.catch_up`: the process
        has been alive since ``wakeup``; a lazily created service adopts
        the state it would have had at this block's activation round.
        """
        activation = self.schedule.block_start(self.schedule.block_of(round_no)) + 1
        if round_no > activation and self.status == WAITING:
            self._begin_block(activation)

    # ------------------------------------------------------------------
    # Engine phases
    # ------------------------------------------------------------------

    def send_phase(self, round_no: int) -> List[Message]:
        if self.schedule.round_in_block(round_no) == 1:
            self._begin_block(round_no)
        messages: List[Message] = []
        position = self.schedule.round_in_iteration(round_no)
        if position == 0:
            self._begin_iteration()
        elif position == 1 and self.status == ACTIVE:
            messages.extend(self._send_fragments(round_no))
        elif position == 2 and self.status == ACTIVE:
            self._inject_share(round_no)
        return messages

    def on_message(self, round_no: int, message: Message) -> None:
        payload = message.payload
        if not isinstance(payload, FragmentDelivery):
            raise TypeError("unexpected GD payload {!r}".format(type(payload)))
        fragments = [
            fragment
            for fragment in payload.fragments
            if not fragment.expired(round_no)
        ]
        if fragments:
            self.on_fragments(round_no, fragments)

    def end_round(self, round_no: int) -> None:
        if self.schedule.is_block_last_round(round_no):
            self._publish_distribution(round_no)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _begin_block(self, round_no: int) -> None:
        uptime = round_no - self.wakeup
        if uptime < self.params.gd_uptime(self.dline):
            self.status = WAITING
            return
        # Active regardless of having fragments — GD's census counts every
        # uptime-qualified group member (Section 4.5).
        self.status = ACTIVE
        self.blocks_active += 1
        self.partials = {
            uid: fragment
            for uid, fragment in self.waiting.items()
            if not fragment.expired(round_no)
        }
        self.waiting = {}
        self.hit_set = set()
        self._send_counts = {}
        self.collaborators = set(
            self.partition_set.members(self.partition, self.my_group)
        )
        self._collaborators_next = set()
        # Local destinations: if this process is itself a destination of a
        # fragment it holds, deliver immediately and record the hit.
        local = [
            fragment
            for fragment in self.partials.values()
            if self.pid in fragment.dest
        ]
        if local:
            self.on_fragments(round_no, local)
            for fragment in local:
                self.hit_set.add((self.pid, fragment.rid))

    def _begin_iteration(self) -> None:
        if self._collaborators_next:
            self.collaborators = self._collaborators_next | {self.pid}
        self._collaborators_next = set()

    def _live_partials(self, round_no: int) -> List[Fragment]:
        return [f for f in self.partials.values() if not f.expired(round_no)]

    def _send_fragments(self, round_no: int) -> List[Message]:
        partials = self._live_partials(round_no)
        if not partials:
            return []
        hit_procs = {dst for dst, _ in self.hit_set}
        fanout = self.params.service_fanout(
            self.n, self.dline, len(self.collaborators)
        )
        if self.params.gd_target_pool == "group":
            pool = sorted(
                set().union(
                    *(
                        self.partition_set.members(self.partition, g)
                        for g in range(self.partition_set.num_groups)
                        if g != self.my_group
                    )
                )
                - hit_procs
            )
        else:
            remaining: Set[int] = set()
            for fragment in partials:
                for dst in fragment.dest:
                    if dst != self.pid and (dst, fragment.rid) not in self.hit_set:
                        remaining.add(dst)
            pool = sorted(remaining)
        if not pool:
            return []
        count = min(fanout, len(pool))
        targets = pool if count == len(pool) else self.rng.sample(pool, count)
        messages: List[Message] = []
        for target in targets:
            appropriate = tuple(
                fragment
                for fragment in partials
                if target in fragment.dest
                and (target, fragment.rid) not in self.hit_set
            )
            if not appropriate and self.params.gd_target_pool != "group":
                continue
            for fragment in appropriate:
                entry = (target, fragment.rid)
                sends = self._send_counts.get(entry, 0) + 1
                self._send_counts[entry] = sends
                if sends >= self.params.gd_redundancy:
                    self.hit_set.add(entry)
            messages.append(
                self.make_message(
                    target,
                    FragmentDelivery(self.pid, appropriate),
                    size=max(1, len(appropriate)),
                )
            )
            self.fragments_sent += len(appropriate)
            if self.telemetry.enabled:
                self.telemetry.metrics.counter(
                    "gd.fragments_sent", partition=str(self.partition)
                ).inc(len(appropriate))
                self.telemetry.emit(
                    "gd_send",
                    round_no,
                    pid=self.pid,
                    partition=self.partition,
                    group=self.my_group,
                    target=target,
                    rids=sorted({f.rid for f in appropriate}, key=str),
                )
        return messages

    def _inject_share(self, round_no: int) -> None:
        if not self.partials and not self.hit_set:
            # Nothing to distribute and nothing to report.  The census only
            # matters to processes that are sending (to divide their fanout),
            # and every live group member holds the same partials — so when
            # this process has none, no group member is sending either.
            return
        share = GDShare(sender=self.pid, hits=frozenset(self.hit_set))
        self.gossip.inject(
            round_no,
            share,
            deadline=self.schedule.gossip_deadline,
            dest=range(self.n),
            uid=(self.channel, "share", self.pid, round_no),
        )

    def _publish_distribution(self, round_no: int) -> None:
        if self.status != ACTIVE or not self.hit_set:
            return
        record = DistributionShare(
            sender=self.pid,
            dline=self.dline,
            partition=self.partition,
            group=self.my_group,
            hits=frozenset(self.hit_set),
        )
        self.all_gossip.inject(
            round_no,
            record,
            deadline=self.schedule.allgossip_deadline,
            dest=range(self.n),
            uid=(self.channel, "dist", self.pid, round_no),
        )
        self.shares_published += 1
