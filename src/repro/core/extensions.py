"""Section-7 extensions: reducing the metadata leak.

CONGOS keeps rumor *contents* confidential but leaks metadata: rumor
existence, source, sequence number, and destination sets.  Section 7
sketches three mitigations, all implemented here:

* **Pseudorandom identifiers** (:func:`pseudonymize_rid`) — replace the
  per-source sequence number with a pseudorandom token so observers cannot
  count a source's rumors from identifiers alone.
* **Destination-set hiding** (:func:`expand_destination_hiding`) — replace
  one rumor with ``n`` single-destination rumors: real content (wrapped so
  only intended recipients recognise it) for destinations, random bytes
  for everyone else.  Message complexity is unchanged; message *volume*
  (size) grows by ``~n/|D|``, which bench E10 measures.
* **Existence hiding** (:class:`CoverTrafficWorkload`) — continuously
  inject content-free cover rumors so observers cannot count real ones.

A real deployment would authenticate the "real" wrapper with per-recipient
MACs; the simulation uses a plaintext marker, which preserves exactly the
property the paper claims (an outsider learns only that *it* is not a
destination, never who is).
"""

from __future__ import annotations

import hashlib
import random
from typing import List, Optional, Sequence

from repro.adversary.injection import InjectionWorkload
from repro.gossip.rumor import Rumor, RumorId
from repro.sim.engine import AdversaryView
from repro.sim.events import RoundDecision

__all__ = [
    "REAL_MARKER",
    "pseudonymize_rid",
    "expand_destination_hiding",
    "extract_hidden_payload",
    "CoverTrafficWorkload",
    "DestinationHidingWorkload",
    "is_cover_rumor",
]

REAL_MARKER = b"\x00CONGOS-REAL\x00"
_COVER_SEQ_BASE = 1 << 40  # cover rumors use a disjoint sequence range


def pseudonymize_rid(rid: RumorId, secret: bytes) -> RumorId:
    """Replace the sequence number with a pseudorandom token (Section 7).

    Deterministic given ``secret`` (so the source can recognise its own
    confirmations) but unlinkable without it.  The source id remains — the
    paper notes hiding *who gossips* is largely unavoidable.
    """
    digest = hashlib.sha256()
    digest.update(secret)
    digest.update(str(rid.src).encode("utf-8"))
    digest.update(b"/")
    digest.update(str(rid.seq).encode("utf-8"))
    token = int.from_bytes(digest.digest()[:6], "big")
    return RumorId(src=rid.src, seq=token)


def expand_destination_hiding(
    rumor: Rumor, n: int, rng: random.Random
) -> List[Rumor]:
    """Split one rumor into ``n`` single-destination rumors (Section 7).

    "When a rumor rho is injected at process p_i, the source creates n new
    rumors, each with a single process in its destination set.  For every
    process in rho.D, the new rumor contains a copy of the injected
    rumor's content.  For the remaining new rumors, the contents ... are
    chosen at random."
    """
    wrapped = REAL_MARKER + rumor.data
    out: List[Rumor] = []
    for pid in range(n):
        if pid == rumor.rid.src:
            continue
        if pid in rumor.dest:
            data = wrapped
        else:
            data = rng.randbytes(len(wrapped))
        out.append(
            Rumor(
                rid=RumorId(rumor.rid.src, rumor.rid.seq * n + pid),
                data=data,
                deadline=rumor.deadline,
                dest=frozenset({pid}),
                injected_at=rumor.injected_at,
            )
        )
    return out


def extract_hidden_payload(data: bytes) -> Optional[bytes]:
    """Recover the real payload from a destination-hiding rumor, if any.

    Returns ``None`` for chaff (random contents) — which is all a
    non-destination ever receives.
    """
    if data.startswith(REAL_MARKER):
        return data[len(REAL_MARKER):]
    return None


def is_cover_rumor(rumor: Rumor) -> bool:
    """True for content-free rumors injected by the cover workload."""
    return rumor.rid.seq >= _COVER_SEQ_BASE


class DestinationHidingWorkload(InjectionWorkload):
    """Wraps a workload, applying destination hiding to every injection.

    Each rumor the inner workload would inject is replaced by its ``n - 1``
    single-destination sub-rumors (real content wrapped for destinations,
    chaff for everyone else), spread over consecutive rounds at the same
    source (the model allows one injection per process per round).

    Observers (and the QoD auditor) see only the sub-rumors: the
    destination set is hidden from *everything* outside the source — which
    is the point.
    """

    def __init__(self, inner: InjectionWorkload, n: int, rng: random.Random):
        super().__init__(rng, payload_size=inner.payload_size)
        self.inner = inner
        self.n = n
        # (round -> list of (src, sub-rumor)) pending emission
        self._queue = {}

    def round_start(self, view: AdversaryView) -> RoundDecision:
        decision = RoundDecision()
        inner_decision = self.inner.round_start(view)
        for src, rumor in inner_decision.injections:
            subs = expand_destination_hiding(rumor, self.n, self.rng)
            for offset, sub in enumerate(subs):
                self._queue.setdefault(view.round + offset, []).append((src, sub))
        emitted = set()
        for src, sub in self._queue.pop(view.round, []):
            if src in emitted:
                # One injection per process per round: push the overflow
                # (overlapping expansions of the same source) to tomorrow.
                self._queue.setdefault(view.round + 1, []).append((src, sub))
                continue
            if not view.is_alive(src):
                continue
            emitted.add(src)
            self.injected.append(sub)
            decision.injections.append((src, sub))
        # Faults decided by sibling adversaries are merged later; crashes
        # from the inner decision (none for workloads) pass through.
        decision.crashes |= inner_decision.crashes
        decision.restarts |= inner_decision.restarts
        return decision


class CoverTrafficWorkload(InjectionWorkload):
    """Continuously injects fake rumors to hide how many real ones exist.

    Compose with a real workload via
    :class:`~repro.adversary.base.ComposedAdversary`; the two must not
    inject at the same process in the same round, so cover traffic picks
    its sources from a reserved stride (callers choose non-overlapping
    ``offset``/``stride`` against the real workload, or accept the
    composition error as a loud misconfiguration signal).
    """

    def __init__(
        self,
        n: int,
        rng: random.Random,
        rate: int = 1,
        period: int = 4,
        dest_size: int = 4,
        deadline: int = 128,
        start_round: int = 0,
        stop_round: Optional[int] = None,
        payload_size: int = 16,
        sources: Optional[Sequence[int]] = None,
    ):
        super().__init__(rng, payload_size)
        self.n = n
        self.rate = rate
        self.period = period
        self.dest_size = dest_size
        self.deadline = deadline
        self.start_round = start_round
        self.stop_round = stop_round
        self.sources = list(sources) if sources is not None else list(range(n))
        self._cover_seqs = {}

    def _next_cover_seq(self, src: int) -> int:
        seq = self._cover_seqs.get(src, 0)
        self._cover_seqs[src] = seq + 1
        return _COVER_SEQ_BASE + seq

    def round_start(self, view: AdversaryView) -> RoundDecision:
        decision = RoundDecision()
        round_no = view.round
        if round_no < self.start_round:
            return decision
        if self.stop_round is not None and round_no >= self.stop_round:
            return decision
        if (round_no - self.start_round) % self.period:
            return decision
        alive_sources = [p for p in self.sources if view.is_alive(p)]
        if not alive_sources:
            return decision
        for src in self.rng.sample(
            alive_sources, min(self.rate, len(alive_sources))
        ):
            dest = self.random_destinations(self.n, self.dest_size, exclude=(src,))
            if not dest:
                continue
            rumor = Rumor(
                rid=RumorId(src, self._next_cover_seq(src)),
                data=self.rng.randbytes(self.payload_size),
                deadline=self.deadline,
                dest=frozenset(dest),
                injected_at=round_no,
            )
            self.injected.append(rumor)
            decision.injections.append((src, rumor))
        return decision
