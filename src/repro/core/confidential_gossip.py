"""The ConfidentialGossip coordinator (Figures 2, 5 and 8).

This is the top of the CONGOS stack at each process.  It

* splits injected rumors and feeds the per-partition services (done by
  :class:`~repro.core.congos.CongosNode`, which owns the wiring);
* collects fragments returned by GroupDistribution and **reassembles**
  rumors as soon as all groups of some partition are present;
* assembles the ``hitSetM`` matrix from AllGossip distribution shares and
  **confirms** its own rumors once, for some partition, every group's
  hitSet covers the destination set (Figure 8, lines 38-46);
* fires the **fallback**: when a rumor it initiated reaches its deadline
  unconfirmed, the source sends the full rumor directly to every
  destination ("shoot", Figure 8 lines 47-53) — this is what makes
  Quality of Delivery hold with probability 1 (Lemma 4).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.core.config import CongosParams
from repro.core.group_distribution import DistributionShare, HitEntry
from repro.core.partitions import PartitionSet
from repro.core.splitting import Fragment, merge_fragments
from repro.gossip.rumor import Rumor, RumorId
from repro.gossip.service import SubService
from repro.obs.instrument import NULL_TELEMETRY
from repro.sim.messages import Message, ServiceTags

__all__ = [
    "CachedRumor",
    "ConfidentialGossipCoordinator",
    "DeliveryRecord",
    "DirectRumor",
]

DeliverCallback = Callable[[int, int, RumorId, bytes, str], None]
"""Delivery hook: ``(pid, round_no, rid, data, path)``."""


@dataclass
class CachedRumor:
    """Source-side record of an own rumor awaiting confirmation."""

    rumor: Rumor
    dline: int
    injected_at: int
    confirmed_at: Optional[int] = None
    # Degradation knob (params.fallback_early_fraction): < 1.0 shoots
    # unconfirmed rumors before the full deadline elapses.  1.0 is the
    # paper's deadline-exact fallback (Figure 8 line 47).
    fallback_fraction: float = 1.0

    @property
    def fallback_round(self) -> int:
        horizon = self.rumor.deadline
        if self.fallback_fraction < 1.0:
            horizon = max(1, math.ceil(self.fallback_fraction * horizon))
        return self.injected_at + horizon


@dataclass(frozen=True)
class DirectRumor:
    """A full rumor sent point-to-point by its source.

    ``path`` distinguishes the deliberate direct-send route (short
    deadlines / Theorem-16 case 1) from the deadline fallback ("shoot"),
    so benches can report fallback rates.
    """

    rumor: Rumor
    path: str  # "direct" | "shoot"

    def reveals(self):
        return self.rumor.reveals()


@dataclass(frozen=True)
class DeliveryRecord:
    """How and when a rumor was delivered locally."""

    rid: RumorId
    data: bytes
    round_no: int
    path: str  # "local" | "reassembled" | "shoot" | "direct"


class ConfidentialGossipCoordinator(SubService):
    """ConfidentialGossip service state at one process."""

    CHANNEL = "shoot"

    def __init__(
        self,
        pid: int,
        n: int,
        params: CongosParams,
        partition_set: PartitionSet,
        deliver_callback: Optional[DeliverCallback] = None,
        telemetry=None,
    ):
        super().__init__(pid, n, ServiceTags.CONFIDENTIAL, self.CHANNEL)
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.params = params
        self.partition_set = partition_set
        self.deliver_callback = deliver_callback

        self.rumor_cache: Dict[RumorId, CachedRumor] = {}
        self.hit_matrix: Dict[Tuple[int, int, int], Set[HitEntry]] = {}
        self.fragment_store: Dict[Tuple[RumorId, int], Dict[int, Fragment]] = {}
        self.deliveries: Dict[RumorId, DeliveryRecord] = {}
        self._pending_direct: List[Rumor] = []
        self._dirty_confirmations = False

        # Run statistics.
        self.fallbacks = 0
        self.confirmations = 0
        self.reassemblies = 0
        self.direct_sends = 0

    # ------------------------------------------------------------------
    # Upstream API (called by CongosNode)
    # ------------------------------------------------------------------

    def register(self, round_no: int, rumor: Rumor, dline: int) -> None:
        """Track an own rumor going through the pipeline."""
        self.rumor_cache[rumor.rid] = CachedRumor(
            rumor=rumor,
            dline=dline,
            injected_at=round_no,
            fallback_fraction=self.params.fallback_early_fraction,
        )

    def direct_send(self, round_no: int, rumor: Rumor) -> None:
        """Queue a rumor for immediate direct delivery (short deadline or
        Theorem-16 case 1)."""
        self._pending_direct.append(rumor)
        self.direct_sends += 1
        if self.telemetry.enabled:
            self.telemetry.emit(
                "rumor_direct",
                round_no,
                pid=self.pid,
                rid=rumor.rid,
                targets=sorted(rumor.dest - {self.pid}),
            )

    def deliver_local(
        self, round_no: int, rid: RumorId, data: bytes, path: str
    ) -> None:
        """Record a delivery to this process's user (idempotent)."""
        if rid in self.deliveries:
            return
        record = DeliveryRecord(rid=rid, data=data, round_no=round_no, path=path)
        self.deliveries[rid] = record
        if self.telemetry.enabled:
            self.telemetry.metrics.counter("rumor.delivered", path=path).inc()
            self.telemetry.emit(
                "rumor_deliver", round_no, pid=self.pid, rid=rid, path=path
            )
        if self.deliver_callback is not None:
            self.deliver_callback(self.pid, round_no, rid, data, path)

    def on_fragment(self, round_no: int, fragment: Fragment) -> None:
        """A fragment delivered by some GroupDistribution[l]."""
        key = (fragment.rid, fragment.partition)
        bucket = self.fragment_store.setdefault(key, {})
        if fragment.group in bucket:
            return
        bucket[fragment.group] = fragment
        if len(bucket) == fragment.total_groups:
            data = merge_fragments([bucket[g] for g in sorted(bucket)])
            self.reassemblies += 1
            self.deliver_local(round_no, fragment.rid, data, "reassembled")

    def on_distribution_share(self, round_no: int, share: DistributionShare) -> None:
        """AllGossip record: fold into hitSetM, re-check confirmations."""
        key = (share.dline, share.partition, share.group)
        self.hit_matrix.setdefault(key, set()).update(share.hits)
        self._dirty_confirmations = True

    # ------------------------------------------------------------------
    # Engine phases
    # ------------------------------------------------------------------

    def send_phase(self, round_no: int) -> List[Message]:
        if self._dirty_confirmations:
            self._check_confirmations(round_no)
        messages: List[Message] = []
        for rumor in self._pending_direct:
            messages.extend(self._shoot(rumor, "direct"))
        self._pending_direct = []
        expired: List[RumorId] = []
        for rid, cached in self.rumor_cache.items():
            if cached.confirmed_at is not None:
                continue
            if round_no >= cached.fallback_round:
                targets = set(cached.rumor.dest)
                if self.params.fallback_scope == "unconfirmed":
                    targets -= self._covered_destinations(cached)
                messages.extend(
                    self._shoot(cached.rumor, "shoot", targets=targets)
                )
                self.fallbacks += 1
                if self.telemetry.enabled:
                    self.telemetry.metrics.counter("rumor.fallbacks").inc()
                    self.telemetry.emit(
                        "rumor_fallback",
                        round_no,
                        pid=self.pid,
                        rid=rid,
                        targets=sorted(targets - {self.pid}),
                    )
                expired.append(rid)
        for rid in expired:
            del self.rumor_cache[rid]
        return messages

    def on_message(self, round_no: int, message: Message) -> None:
        payload = message.payload
        if isinstance(payload, Rumor):
            payload = DirectRumor(payload, "shoot")
        if not isinstance(payload, DirectRumor):
            raise TypeError(
                "unexpected coordinator payload {!r}".format(type(payload))
            )
        rumor = payload.rumor
        self.deliver_local(round_no, rumor.rid, rumor.data, payload.path)

    def end_round(self, round_no: int) -> None:
        if self._dirty_confirmations:
            self._check_confirmations(round_no)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def delivered(self) -> Dict[RumorId, bytes]:
        return {rid: record.data for rid, record in self.deliveries.items()}

    def is_confirmed(self, rid: RumorId) -> bool:
        cached = self.rumor_cache.get(rid)
        return cached is not None and cached.confirmed_at is not None

    def pending_rumors(self) -> List[RumorId]:
        return [
            rid
            for rid, cached in self.rumor_cache.items()
            if cached.confirmed_at is None
        ]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _shoot(
        self,
        rumor: Rumor,
        path: str,
        targets: Optional[Set[int]] = None,
    ) -> List[Message]:
        """Send the full rumor straight to (a subset of) its destinations."""
        messages = []
        payload = DirectRumor(rumor, path)
        recipients = rumor.dest if targets is None else targets
        for dst in sorted(recipients):
            if dst == self.pid:
                continue
            messages.append(self.make_message(dst, payload, size=1))
        return messages

    def _covered_destinations(self, cached: CachedRumor) -> Set[int]:
        """Destinations already hit with every group's fragment in some
        partition (they have reassembled the rumor — [GD:CONFIRM] holds
        per destination, so skipping them in the fallback is safe)."""
        covered: Set[int] = set()
        rid = cached.rumor.rid
        for dst in cached.rumor.dest:
            for partition in range(self.partition_set.count):
                if all(
                    (dst, rid)
                    in self.hit_matrix.get(
                        (cached.dline, partition, group), ()
                    )
                    for group in range(self.partition_set.num_groups)
                ):
                    covered.add(dst)
                    break
        return covered

    def _check_confirmations(self, round_no: int) -> None:
        self._dirty_confirmations = False
        for cached in self.rumor_cache.values():
            if cached.confirmed_at is not None:
                continue
            if self._covered(cached):
                cached.confirmed_at = round_no
                self.confirmations += 1
                if self.telemetry.enabled:
                    self.telemetry.metrics.counter("rumor.confirmations").inc()
                    self.telemetry.emit(
                        "rumor_confirm",
                        round_no,
                        pid=self.pid,
                        rid=cached.rumor.rid,
                    )

    def _covered(self, cached: CachedRumor) -> bool:
        """Figure 8 lines 41-46: some partition covers the whole
        destination set in the hitSet of *every* group."""
        need = {(dst, cached.rumor.rid) for dst in cached.rumor.dest}
        if not need:
            return True
        for partition in range(self.partition_set.count):
            if all(
                need
                <= self.hit_matrix.get((cached.dline, partition, group), set())
                for group in range(self.partition_set.num_groups)
            ):
                return True
        return False
