"""The ConfidentialGossip coordinator (Figures 2, 5 and 8).

This is the top of the CONGOS stack at each process.  It

* splits injected rumors and feeds the per-partition services (done by
  :class:`~repro.core.congos.CongosNode`, which owns the wiring);
* collects fragments returned by GroupDistribution and **reassembles**
  rumors as soon as all groups of some partition are present;
* assembles the ``hitSetM`` matrix from AllGossip distribution shares and
  **confirms** its own rumors once, for some partition, every group's
  hitSet covers the destination set (Figure 8, lines 38-46);
* fires the **fallback**: when a rumor it initiated reaches its deadline
  unconfirmed, the source sends the full rumor directly to every
  destination ("shoot", Figure 8 lines 47-53) — this is what makes
  Quality of Delivery hold with probability 1 (Lemma 4);
* optionally runs the **reliable direct-send layer** (beyond the paper;
  see DESIGN.md): for rumors taking the direct route (deadline at or
  below ``direct_send_threshold``, or Theorem 16 case 1), a per-rumor
  :class:`DirectSendState` machine retransmits unacknowledged copies
  with exponential backoff and/or spreads ``k`` copies over the rounds
  before the deadline.  Destinations acknowledge received copies with
  :class:`DirectAck` control messages that carry the rumor id and the
  acker's pid only — never payload bytes — so the layer cannot widen
  the knowledge set.  All of it is inert at default parameters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.core.config import CongosParams
from repro.core.group_distribution import DistributionShare, HitEntry
from repro.core.partitions import PartitionSet
from repro.core.splitting import Fragment, merge_fragments
from repro.gossip.rumor import Rumor, RumorId
from repro.gossip.service import SubService
from repro.obs.instrument import NULL_TELEMETRY
from repro.sim.messages import Message, ServiceTags

__all__ = [
    "CachedRumor",
    "ConfidentialGossipCoordinator",
    "DeliveryRecord",
    "DirectAck",
    "DirectRumor",
    "DirectSendState",
]

DeliverCallback = Callable[[int, int, RumorId, bytes, str], None]
"""Delivery hook: ``(pid, round_no, rid, data, path)``."""


@dataclass
class CachedRumor:
    """Source-side record of an own rumor awaiting confirmation."""

    rumor: Rumor
    dline: int
    injected_at: int
    confirmed_at: Optional[int] = None
    # Degradation knob (params.fallback_early_fraction): < 1.0 shoots
    # unconfirmed rumors before the full deadline elapses.  1.0 is the
    # paper's deadline-exact fallback (Figure 8 line 47).
    fallback_fraction: float = 1.0

    @property
    def fallback_round(self) -> int:
        horizon = self.rumor.deadline
        if self.fallback_fraction < 1.0:
            horizon = max(1, math.ceil(self.fallback_fraction * horizon))
        return self.injected_at + horizon


@dataclass(frozen=True)
class DirectRumor:
    """A full rumor sent point-to-point by its source.

    ``path`` distinguishes the deliberate direct-send route (short
    deadlines / Theorem-16 case 1) from the deadline fallback ("shoot"),
    so benches can report fallback rates.
    """

    rumor: Rumor
    path: str  # "direct" | "shoot"

    def reveals(self):
        return self.rumor.reveals()


@dataclass(frozen=True)
class DirectAck:
    """Acknowledgement of one received direct copy (pure control traffic).

    Deliberately carries the rumor id and the acker's pid *only* — no
    data bytes, no destination set, no ``reveals()`` — so routing an ack
    anywhere (even misdelivering it) can never leak rumor contents.  The
    confidentiality auditor enforces this shape at runtime
    (:meth:`repro.audit.confidentiality.ConfidentialityAuditor`'s
    ``ack_leak`` check).
    """

    rid: RumorId
    acker: int


@dataclass
class DirectSendState:
    """Source-side reliability state for one direct-sent rumor.

    Tracks which destinations have not acknowledged yet, the rounds at
    which the extra k-copy sends fire, and the exponential-backoff
    retransmit schedule.  Created only when
    ``params.direct_send_reliable`` — default runs never build one.
    """

    rumor: Rumor
    deadline_round: int
    unacked: Set[int]
    # Rounds at which the remaining k-copy sends fire, ascending.
    copy_rounds: List[int]
    retries_left: int
    backoff: int
    next_retry: Optional[int]
    attempts: int = 1  # the initial send counts as the first attempt

    def exhausted(self) -> bool:
        """No further sends will ever fire for this rumor."""
        return not self.copy_rounds and self.next_retry is None


@dataclass(frozen=True)
class DeliveryRecord:
    """How and when a rumor was delivered locally."""

    rid: RumorId
    data: bytes
    round_no: int
    path: str  # "local" | "reassembled" | "shoot" | "direct"


class ConfidentialGossipCoordinator(SubService):
    """ConfidentialGossip service state at one process."""

    CHANNEL = "shoot"

    def __init__(
        self,
        pid: int,
        n: int,
        params: CongosParams,
        partition_set: PartitionSet,
        deliver_callback: Optional[DeliverCallback] = None,
        telemetry=None,
        rng=None,
    ):
        super().__init__(pid, n, ServiceTags.CONFIDENTIAL, self.CHANNEL)
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.params = params
        self.partition_set = partition_set
        self.deliver_callback = deliver_callback
        # Dedicated stream for retransmit jitter (a fresh derive-by-label
        # stream, so consuming it never perturbs the other services' draws
        # and default runs stay bit-identical).  None = no jitter.
        self.rng = rng

        self.rumor_cache: Dict[RumorId, CachedRumor] = {}
        self.hit_matrix: Dict[Tuple[int, int, int], Set[HitEntry]] = {}
        self.fragment_store: Dict[Tuple[RumorId, int], Dict[int, Fragment]] = {}
        self.deliveries: Dict[RumorId, DeliveryRecord] = {}
        self._pending_direct: List[Rumor] = []
        self._dirty_confirmations = False
        # Reliable direct-send layer (params.direct_send_reliable only).
        self._direct_states: Dict[RumorId, DirectSendState] = {}
        self._pending_acks: List[Tuple[int, RumorId]] = []

        # Run statistics.
        self.fallbacks = 0
        self.confirmations = 0
        self.reassemblies = 0
        self.direct_sends = 0
        self.direct_retries = 0
        self.direct_acks = 0

    # ------------------------------------------------------------------
    # Upstream API (called by CongosNode)
    # ------------------------------------------------------------------

    def register(self, round_no: int, rumor: Rumor, dline: int) -> None:
        """Track an own rumor going through the pipeline."""
        self.rumor_cache[rumor.rid] = CachedRumor(
            rumor=rumor,
            dline=dline,
            injected_at=round_no,
            fallback_fraction=self.params.fallback_early_fraction,
        )

    def direct_send(self, round_no: int, rumor: Rumor) -> None:
        """Queue a rumor for immediate direct delivery (short deadline or
        Theorem-16 case 1)."""
        self._pending_direct.append(rumor)
        self.direct_sends += 1
        if self.telemetry.enabled:
            self.telemetry.emit(
                "rumor_direct",
                round_no,
                pid=self.pid,
                rid=rumor.rid,
                targets=sorted(rumor.dest - {self.pid}),
            )
        if self.params.direct_send_reliable:
            self._track_direct(round_no, rumor)

    def _track_direct(self, round_no: int, rumor: Rumor) -> None:
        """Open the reliability state machine for one direct-sent rumor.

        The initial copy goes out through the untouched ``_pending_direct``
        path this same round; everything scheduled here fires strictly
        later, so turning the knobs on never changes round-0 traffic.
        """
        targets = set(rumor.dest) - {self.pid}
        if not targets:
            return
        deadline_round = round_no + rumor.deadline
        copies = self.params.direct_send_copies
        copy_rounds = sorted(
            {
                round_no + max(1, (index * rumor.deadline) // copies)
                for index in range(1, copies)
            }
        )
        copy_rounds = [r for r in copy_rounds if r <= deadline_round]
        retries = self.params.direct_send_retries
        next_retry: Optional[int] = None
        backoff = 2  # an ack to the initial copy can arrive one round later
        if retries > 0:
            candidate = round_no + backoff + self._retry_jitter()
            if candidate <= deadline_round:
                next_retry = candidate
        self._direct_states[rumor.rid] = DirectSendState(
            rumor=rumor,
            deadline_round=deadline_round,
            unacked=targets,
            copy_rounds=copy_rounds,
            retries_left=retries,
            backoff=backoff,
            next_retry=next_retry,
        )

    def _retry_jitter(self) -> int:
        """0 or 1 rounds, from the dedicated deterministic stream."""
        if self.rng is None:
            return 0
        return self.rng.randrange(2)

    def deliver_local(
        self, round_no: int, rid: RumorId, data: bytes, path: str
    ) -> None:
        """Record a delivery to this process's user (idempotent)."""
        if rid in self.deliveries:
            return
        record = DeliveryRecord(rid=rid, data=data, round_no=round_no, path=path)
        self.deliveries[rid] = record
        if self.telemetry.enabled:
            self.telemetry.metrics.counter("rumor.delivered", path=path).inc()
            self.telemetry.emit(
                "rumor_deliver", round_no, pid=self.pid, rid=rid, path=path
            )
        if self.deliver_callback is not None:
            self.deliver_callback(self.pid, round_no, rid, data, path)

    def on_fragment(self, round_no: int, fragment: Fragment) -> None:
        """A fragment delivered by some GroupDistribution[l]."""
        key = (fragment.rid, fragment.partition)
        bucket = self.fragment_store.setdefault(key, {})
        if fragment.group in bucket:
            return
        bucket[fragment.group] = fragment
        if len(bucket) == fragment.total_groups:
            data = merge_fragments([bucket[g] for g in sorted(bucket)])
            self.reassemblies += 1
            self.deliver_local(round_no, fragment.rid, data, "reassembled")

    def on_distribution_share(self, round_no: int, share: DistributionShare) -> None:
        """AllGossip record: fold into hitSetM, re-check confirmations."""
        key = (share.dline, share.partition, share.group)
        self.hit_matrix.setdefault(key, set()).update(share.hits)
        self._dirty_confirmations = True

    # ------------------------------------------------------------------
    # Engine phases
    # ------------------------------------------------------------------

    def send_phase(self, round_no: int) -> List[Message]:
        if self._dirty_confirmations:
            self._check_confirmations(round_no)
        messages: List[Message] = []
        for rumor in self._pending_direct:
            messages.extend(self._shoot(rumor, "direct"))
        self._pending_direct = []
        # Reliable direct-send layer: both lists are empty unless the
        # direct_send_* knobs are on, so default runs skip this entirely.
        if self._pending_acks:
            messages.extend(self._flush_acks())
        if self._direct_states:
            messages.extend(self._direct_phase(round_no))
        expired: List[RumorId] = []
        for rid, cached in self.rumor_cache.items():
            if cached.confirmed_at is not None:
                continue
            if round_no >= cached.fallback_round:
                targets = set(cached.rumor.dest)
                if self.params.fallback_scope == "unconfirmed":
                    targets -= self._covered_destinations(cached)
                messages.extend(
                    self._shoot(cached.rumor, "shoot", targets=targets)
                )
                self.fallbacks += 1
                if self.telemetry.enabled:
                    self.telemetry.metrics.counter("rumor.fallbacks").inc()
                    self.telemetry.emit(
                        "rumor_fallback",
                        round_no,
                        pid=self.pid,
                        rid=rid,
                        targets=sorted(targets - {self.pid}),
                    )
                expired.append(rid)
        for rid in expired:
            del self.rumor_cache[rid]
        return messages

    def on_message(self, round_no: int, message: Message) -> None:
        payload = message.payload
        if isinstance(payload, DirectAck):
            self._on_direct_ack(round_no, payload)
            return
        if isinstance(payload, Rumor):
            payload = DirectRumor(payload, "shoot")
        if not isinstance(payload, DirectRumor):
            raise TypeError(
                "unexpected coordinator payload {!r}".format(type(payload))
            )
        rumor = payload.rumor
        self.deliver_local(round_no, rumor.rid, rumor.data, payload.path)
        # Acknowledge every received direct copy (not just the first):
        # acks traverse the same lossy network, so re-acking duplicates
        # is what lets the source converge under drop.
        if (
            payload.path == "direct"
            and self.params.direct_send_ack
            and message.src != self.pid
        ):
            self._pending_acks.append((message.src, rumor.rid))

    def end_round(self, round_no: int) -> None:
        if self._dirty_confirmations:
            self._check_confirmations(round_no)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def delivered(self) -> Dict[RumorId, bytes]:
        return {rid: record.data for rid, record in self.deliveries.items()}

    def is_confirmed(self, rid: RumorId) -> bool:
        cached = self.rumor_cache.get(rid)
        return cached is not None and cached.confirmed_at is not None

    def pending_rumors(self) -> List[RumorId]:
        return [
            rid
            for rid, cached in self.rumor_cache.items()
            if cached.confirmed_at is None
        ]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    # -- reliable direct-send layer ------------------------------------

    def _flush_acks(self) -> List[Message]:
        """One :class:`DirectAck` control message per queued (src, rid).

        Tagged :data:`ServiceTags.DIRECT_ACK` so message-complexity
        accounting separates ack traffic from rumor-carrying shoots; the
        channel stays ``"shoot"`` so routing reaches this coordinator.
        """
        messages = [
            Message(
                src=self.pid,
                dst=dst,
                service=ServiceTags.DIRECT_ACK,
                payload=DirectAck(rid=rid, acker=self.pid),
                size=1,
                channel=self.channel,
            )
            for dst, rid in self._pending_acks
        ]
        self._pending_acks = []
        return messages

    def _direct_phase(self, round_no: int) -> List[Message]:
        """Fire due k-copy sends and ack-timeout retransmits."""
        messages: List[Message] = []
        done: Set[RumorId] = set()
        for rid, state in self._direct_states.items():
            if round_no > state.deadline_round or not state.unacked:
                done.add(rid)
                continue
            fire = False
            while state.copy_rounds and state.copy_rounds[0] <= round_no:
                state.copy_rounds.pop(0)
                fire = True
            if state.next_retry is not None and round_no >= state.next_retry:
                fire = True
                state.retries_left -= 1
                state.backoff *= 2
                state.next_retry = None
                if state.retries_left > 0:
                    candidate = round_no + state.backoff + self._retry_jitter()
                    if candidate <= state.deadline_round:
                        state.next_retry = candidate
            if fire:
                state.attempts += 1
                self.direct_retries += 1
                messages.extend(
                    self._shoot(state.rumor, "direct", targets=set(state.unacked))
                )
                if self.telemetry.enabled:
                    self.telemetry.metrics.counter("rumor.direct_retries").inc()
                    self.telemetry.emit(
                        "rumor_direct_retry",
                        round_no,
                        pid=self.pid,
                        rid=rid,
                        targets=sorted(state.unacked),
                        attempt=state.attempts,
                    )
            if state.exhausted():
                done.add(rid)
        for rid in done:
            del self._direct_states[rid]
        return messages

    def _on_direct_ack(self, round_no: int, ack: DirectAck) -> None:
        self.direct_acks += 1
        state = self._direct_states.get(ack.rid)
        if state is not None:
            state.unacked.discard(ack.acker)
        if self.telemetry.enabled:
            self.telemetry.metrics.counter("rumor.direct_acks").inc()
            self.telemetry.emit(
                "rumor_direct_ack",
                round_no,
                pid=self.pid,
                rid=ack.rid,
                acker=ack.acker,
            )

    def _shoot(
        self,
        rumor: Rumor,
        path: str,
        targets: Optional[Set[int]] = None,
    ) -> List[Message]:
        """Send the full rumor straight to (a subset of) its destinations."""
        messages = []
        payload = DirectRumor(rumor, path)
        recipients = rumor.dest if targets is None else targets
        for dst in sorted(recipients):
            if dst == self.pid:
                continue
            messages.append(self.make_message(dst, payload, size=1))
        return messages

    def _covered_destinations(self, cached: CachedRumor) -> Set[int]:
        """Destinations already hit with every group's fragment in some
        partition (they have reassembled the rumor — [GD:CONFIRM] holds
        per destination, so skipping them in the fallback is safe)."""
        covered: Set[int] = set()
        rid = cached.rumor.rid
        for dst in cached.rumor.dest:
            for partition in range(self.partition_set.count):
                if all(
                    (dst, rid)
                    in self.hit_matrix.get(
                        (cached.dline, partition, group), ()
                    )
                    for group in range(self.partition_set.num_groups)
                ):
                    covered.add(dst)
                    break
        return covered

    def _check_confirmations(self, round_no: int) -> None:
        self._dirty_confirmations = False
        for cached in self.rumor_cache.values():
            if cached.confirmed_at is not None:
                continue
            if self._covered(cached):
                cached.confirmed_at = round_no
                self.confirmations += 1
                if self.telemetry.enabled:
                    self.telemetry.metrics.counter("rumor.confirmations").inc()
                    self.telemetry.emit(
                        "rumor_confirm",
                        round_no,
                        pid=self.pid,
                        rid=cached.rumor.rid,
                    )

    def _covered(self, cached: CachedRumor) -> bool:
        """Figure 8 lines 41-46: some partition covers the whole
        destination set in the hitSet of *every* group."""
        need = {(dst, cached.rumor.rid) for dst in cached.rumor.dest}
        if not need:
            return True
        for partition in range(self.partition_set.count):
            if all(
                need
                <= self.hit_matrix.get((cached.dline, partition, group), set())
                for group in range(self.partition_set.num_groups)
            ):
                return True
        return False
