"""The Proxy service (Figures 3, 6 and 9).

A process in group ``b`` of partition ``l`` may not gossip directly with
the other groups — it would risk learning their fragments.  Instead it
*samples* processes of each other group as proxies: it hands them the
fragment destined for their group, they cache it, gossip it inside their
own group (via GroupGossip[l]), and acknowledge.  Requesters that receive
no acknowledgment blacklist the sampled proxies (``failed-proxies``) and
retry next iteration; same-group requesters collaborate by sharing the
blacklist and a collaborator census through GroupGossip[l], which divides
the fanout budget among them.

Timing (one block = ``dline/4`` rounds, iterations of ``isqrt(dline)+2``):

* block round 0      — if alive for a full block, collect waiting
  fragments; ``status = active`` iff there is something to push;
* iteration round 0  — requesters send proxy requests;
* iteration round 1  — inject the GroupGossip share (proxy buffer +
  failed-proxies + collaborator heartbeat); it spreads over the
  ``isqrt(dline)``-round gossip window;
* iteration last round — proxies acknowledge; requesters blacklist
  non-acknowledging targets;
* block last round   — hand all fragments received for *this* group
  (the ``partial-rumors``) up to the coordinator, which feeds
  GroupDistribution for the next block.

Key invariant ([PROXY:CONFIDENTIAL], used by Lemma 3): a request to a
member of group ``a`` only ever carries fragments whose ``group == a``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Iterable, Iterator, List, Set, Tuple

from repro.core.config import CongosParams
from repro.core.partitions import PartitionSet
from repro.core.splitting import Fragment
from repro.gossip.continuous import ContinuousGossip
from repro.gossip.service import SubService
from repro.obs.instrument import NULL_TELEMETRY
from repro.sim.clock import BlockSchedule
from repro.sim.messages import KnowledgeAtom, Message, ServiceTags

__all__ = ["ProxyRequest", "ProxyAck", "ProxyShare", "ProxyService"]

# Status values (Figure 9 uses {idle, active}; "waiting" is the state of a
# process that restarted mid-block and must wait for the next block).
WAITING = "waiting"
IDLE = "idle"
ACTIVE = "active"


@dataclass(frozen=True)
class ProxyRequest:
    """Fragments handed to a sampled proxy of another group."""

    sender: int
    fragments: Tuple[Fragment, ...]

    def reveals(self) -> Iterator[KnowledgeAtom]:
        for fragment in self.fragments:
            for atom in fragment.reveals():
                yield atom


@dataclass(frozen=True)
class ProxyAck:
    """Acknowledgment that proxying succeeded.  Carries no rumor data."""

    sender: int


@dataclass(frozen=True)
class ProxyShare:
    """The per-iteration GroupGossip share of the Proxy service.

    ``fragments`` are the sender's proxy-buffer contents (fragments *for
    this group*, received from other-group requesters); ``failed_proxies``
    is the shared blacklist; ``collaborator`` marks the sender as an
    active requester for the census.
    """

    sender: int
    fragments: Tuple[Fragment, ...]
    failed_proxies: FrozenSet[int]
    collaborator: bool

    def reveals(self) -> Iterator[KnowledgeAtom]:
        for fragment in self.fragments:
            for atom in fragment.reveals():
                yield atom


class ProxyService(SubService):
    """Proxy[l] at one process, for one deadline class."""

    def __init__(
        self,
        pid: int,
        n: int,
        channel: str,
        dline: int,
        partition: int,
        partition_set: PartitionSet,
        params: CongosParams,
        rng: random.Random,
        gossip: ContinuousGossip,
        on_group_fragments: Callable[[int, List[Fragment]], None],
        wakeup: int,
        telemetry=None,
    ):
        super().__init__(pid, n, ServiceTags.PROXY, channel)
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.dline = dline
        self.partition = partition
        self.partition_set = partition_set
        self.params = params
        self.rng = rng
        self.gossip = gossip
        self.on_group_fragments = on_group_fragments
        self.wakeup = wakeup
        self.schedule = BlockSchedule(dline)
        self.my_group = partition_set.group_of(partition, pid)
        self.other_groups = [
            g for g in range(partition_set.num_groups) if g != self.my_group
        ]

        self.status = WAITING
        self.waiting: List[Tuple[int, Fragment]] = []  # (arrival round, fragment)
        self.my_fragments: Dict[int, List[Fragment]] = {}  # group -> fragments
        self.proxy_buffer: Dict[Tuple, Fragment] = {}
        self._buffer_new: List[Fragment] = []
        self.partial_rumors: Dict[Tuple, Fragment] = {}
        self.failed_proxies: Set[int] = set()
        self.ack_pending: Set[int] = set()
        self.acked_groups: Set[int] = set()
        self.collaborators: Set[int] = {pid}
        self._collaborators_next: Set[int] = set()
        self._targets_this_iteration: Dict[int, Set[int]] = {}
        self._acks_this_iteration: Set[int] = set()

        # Run statistics (read by tests and benches).
        self.requests_sent = 0
        self.acks_sent = 0
        self.blocks_active = 0
        self.retransmits_sent = 0

    # ------------------------------------------------------------------
    # Upstream API
    # ------------------------------------------------------------------

    def distribute(self, round_no: int, fragments: Iterable[Fragment]) -> None:
        """Queue fragments for other groups; picked up at the next block.

        The arrival round is recorded so that a fragment injected exactly
        at a block-start round is *not* collected by that same block (the
        paper collects "fragments injected since the last block began").
        """
        for fragment in fragments:
            if fragment.group == self.my_group:
                raise ValueError(
                    "fragment for own group {} must go through GroupGossip, "
                    "not the Proxy".format(self.my_group)
                )
            self.waiting.append((round_no, fragment))

    def catch_up(self, round_no: int) -> None:
        """Initialise block state for a service instantiated mid-block.

        Protocol instances are materialised lazily (an optimisation over
        the paper's "run every instance at all times"), so a service may
        be created after its block's start round.  The hosting process has
        been alive the whole time; give the service the state it would
        have had if it had existed at the block boundary.
        """
        block_start = self.schedule.block_start(self.schedule.block_of(round_no))
        if round_no > block_start and self.status == WAITING:
            self._begin_block(block_start)

    def on_share(self, round_no: int, share: ProxyShare) -> None:
        """A ProxyShare delivered by GroupGossip[l] (same group only)."""
        self.failed_proxies.update(share.failed_proxies)
        if share.collaborator:
            self._collaborators_next.add(share.sender)
        for fragment in share.fragments:
            if fragment.group != self.my_group:
                continue
            if not fragment.expired(round_no):
                self.partial_rumors.setdefault(fragment.uid, fragment)

    # ------------------------------------------------------------------
    # Engine phases
    # ------------------------------------------------------------------

    def send_phase(self, round_no: int) -> List[Message]:
        if self.schedule.is_block_start(round_no):
            self._begin_block(round_no)
        messages: List[Message] = []
        position = self.schedule.round_in_iteration(round_no)
        if position == 0:
            self._begin_iteration()
            if self.status == ACTIVE:
                messages.extend(self._send_requests(round_no))
        elif position == 1:
            self._inject_share(round_no)
        elif (
            self.params.proxy_retransmit
            and self.status == ACTIVE
            and not self.schedule.is_iteration_last_round(round_no)
            and position in self._retransmit_positions()
        ):
            # Graceful degradation (off by default): re-request at
            # exponentially spaced positions, sampling proxies not yet
            # tried this iteration.  Acks only arrive at the iteration's
            # last round, so every pending group is still unacknowledged.
            messages.extend(self._send_requests(round_no, retransmit=True))
        if (
            self.schedule.is_iteration_last_round(round_no)
            and self.status != WAITING
            and self.ack_pending
        ):
            for requester in sorted(self.ack_pending):
                messages.append(self.make_message(requester, ProxyAck(self.pid)))
                self.acks_sent += 1
            if self.telemetry.enabled:
                self.telemetry.metrics.counter(
                    "proxy.acks", partition=str(self.partition)
                ).inc(len(self.ack_pending))
            self.ack_pending.clear()
        return messages

    def on_message(self, round_no: int, message: Message) -> None:
        payload = message.payload
        if isinstance(payload, ProxyRequest):
            if self.status == WAITING:
                return  # restarted mid-block: no proxying until next block
            for fragment in payload.fragments:
                if fragment.group != self.my_group:
                    raise AssertionError(
                        "[PROXY:CONFIDENTIAL] violated: received fragment for "
                        "group {} in group {}".format(fragment.group, self.my_group)
                    )
                if fragment.expired(round_no):
                    continue
                if fragment.uid not in self.proxy_buffer:
                    self.proxy_buffer[fragment.uid] = fragment
                    self._buffer_new.append(fragment)
                    if self.telemetry.enabled:
                        self.telemetry.emit(
                            "proxy_crossing",
                            round_no,
                            pid=self.pid,
                            partition=self.partition,
                            group=self.my_group,
                            sender=payload.sender,
                            rids=[fragment.rid],
                        )
            self.ack_pending.add(payload.sender)
        elif isinstance(payload, ProxyAck):
            self._acks_this_iteration.add(payload.sender)
        else:
            raise TypeError("unexpected proxy payload {!r}".format(type(payload)))

    def end_round(self, round_no: int) -> None:
        if self.schedule.is_iteration_last_round(round_no):
            self._settle_iteration()
        if self.schedule.is_block_last_round(round_no) and self.status != WAITING:
            fragments = [
                fragment
                for fragment in self.partial_rumors.values()
                if not fragment.expired(round_no)
            ]
            if fragments:
                self.on_group_fragments(round_no, fragments)
            self.partial_rumors.clear()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _begin_block(self, round_no: int) -> None:
        uptime = round_no - self.wakeup
        if uptime < self.params.proxy_uptime(self.dline):
            self.status = WAITING
            return
        fresh = [
            fragment
            for arrival, fragment in self.waiting
            if arrival < round_no and not fragment.expired(round_no)
        ]
        self.waiting = [
            (arrival, fragment)
            for arrival, fragment in self.waiting
            if arrival >= round_no and not fragment.expired(round_no)
        ]
        self.my_fragments = {}
        for fragment in fresh:
            self.my_fragments.setdefault(fragment.group, []).append(fragment)
        if self.my_fragments:
            self.status = ACTIVE
            self.blocks_active += 1
        else:
            self.status = IDLE
        self.failed_proxies = set()
        self.proxy_buffer = {}
        self._buffer_new = []
        self.ack_pending = set()
        self.acked_groups = set()
        self.collaborators = set(
            self.partition_set.members(self.partition, self.my_group)
        )
        self._collaborators_next = set()
        self._targets_this_iteration = {}
        self._acks_this_iteration = set()

    def _begin_iteration(self) -> None:
        if self._collaborators_next:
            self.collaborators = self._collaborators_next | {self.pid}
        self._collaborators_next = set()
        self._targets_this_iteration = {}
        self._acks_this_iteration = set()

    def _retransmit_positions(self) -> List[int]:
        """Iteration positions for degradation retransmits: 2, 4, 8, ...

        Bounded by ``params.proxy_retransmit`` and by the iteration length
        (the last position is reserved for acks, 0/1 for requests/share).
        """
        positions: List[int] = []
        position = 2
        limit = self.schedule.iteration_len - 1
        while len(positions) < self.params.proxy_retransmit and position < limit:
            positions.append(position)
            position *= 2
        return positions

    def _send_requests(
        self, round_no: int, retransmit: bool = False
    ) -> List[Message]:
        messages: List[Message] = []
        fanout = self.params.service_fanout(
            self.n, self.dline, len(self.collaborators)
        )
        for group in self.other_groups:
            if group in self.acked_groups:
                continue
            fragments = tuple(
                f
                for f in self.my_fragments.get(group, [])
                if not f.expired(round_no)
            )
            if not fragments:
                continue
            tried = self._targets_this_iteration.get(group, set())
            excluded = self.failed_proxies | (tried if retransmit else set())
            pool = sorted(
                self.partition_set.members(self.partition, group) - excluded
            )
            if not pool:
                # Everyone blacklisted: desperation reset (the blacklist is
                # heuristic; retrying beats deadlock).
                pool = sorted(self.partition_set.members(self.partition, group))
            count = min(fanout, len(pool))
            targets = pool if count == len(pool) else self.rng.sample(pool, count)
            self._targets_this_iteration.setdefault(group, set()).update(targets)
            request = ProxyRequest(self.pid, fragments)
            for target in targets:
                messages.append(
                    self.make_message(target, request, size=len(fragments))
                )
                self.requests_sent += 1
                if retransmit:
                    self.retransmits_sent += 1
            if self.telemetry.enabled:
                self.telemetry.metrics.counter(
                    "proxy.requests", partition=str(self.partition)
                ).inc(len(targets))
                extra = {"retransmit": True} if retransmit else {}
                self.telemetry.emit(
                    "proxy_request",
                    round_no,
                    pid=self.pid,
                    partition=self.partition,
                    dline=self.dline,
                    group=group,
                    targets=sorted(targets),
                    rids=sorted({f.rid for f in fragments}, key=str),
                    fragments=len(fragments),
                    **extra
                )
        return messages

    def _inject_share(self, round_no: int) -> None:
        if self.status == WAITING:
            return
        is_collaborator = self.status == ACTIVE
        new_fragments = tuple(self._buffer_new)
        self._buffer_new = []
        if not is_collaborator and not new_fragments and not self.failed_proxies:
            return  # nothing to contribute this iteration
        share = ProxyShare(
            sender=self.pid,
            fragments=new_fragments,
            failed_proxies=frozenset(self.failed_proxies),
            collaborator=is_collaborator,
        )
        self.gossip.inject(
            round_no,
            share,
            deadline=self.schedule.gossip_deadline,
            dest=range(self.n),
            uid=(self.channel, "share", self.pid, round_no),
        )

    def _settle_iteration(self) -> None:
        if self.status != ACTIVE:
            self._targets_this_iteration = {}
            self._acks_this_iteration = set()
            return
        for group, targets in self._targets_this_iteration.items():
            acked_from_group = {
                pid for pid in self._acks_this_iteration if pid in targets
            }
            if acked_from_group:
                self.acked_groups.add(group)
            self.failed_proxies.update(targets - self._acks_this_iteration)
        pending = [
            g
            for g in self.other_groups
            if self.my_fragments.get(g) and g not in self.acked_groups
        ]
        if self.my_fragments and not pending:
            self.status = IDLE
        self._targets_this_iteration = {}
        self._acks_this_iteration = set()
