"""CONGOS: the paper's confidential continuous-gossip protocol."""

from repro.core.config import CongosParams, default_deadline_cap
from repro.core.confidential_gossip import (
    CachedRumor,
    ConfidentialGossipCoordinator,
    DeliveryRecord,
)
from repro.core.congos import (
    CongosNode,
    InstanceBundle,
    build_partition_set,
    congos_factory,
)
from repro.core.deadlines import (
    PIPELINE_FLOOR,
    deadline_classes,
    min_pipeline_deadline,
    pipeline_deadline,
    round_down_power_of_two,
    trim_deadline,
)
from repro.core.group_distribution import (
    DistributionShare,
    FragmentDelivery,
    GDShare,
    GroupDistributionService,
)
from repro.core.partitions import (
    BitPartitions,
    PartitionSet,
    RandomPartitions,
    property1_holds,
    property2_exact,
    property2_holds_for_set,
    property2_monte_carlo,
    property2_set_size,
)
from repro.core.extensions import (
    REAL_MARKER,
    CoverTrafficWorkload,
    DestinationHidingWorkload,
    expand_destination_hiding,
    extract_hidden_payload,
    is_cover_rumor,
    pseudonymize_rid,
)
from repro.core.proxy import ProxyAck, ProxyRequest, ProxyService, ProxyShare
from repro.core.splitting import (
    Fragment,
    can_reconstruct,
    merge_fragments,
    split_data,
    split_rumor,
    xor_bytes,
)

__all__ = [
    "BitPartitions",
    "CachedRumor",
    "CoverTrafficWorkload",
    "DestinationHidingWorkload",
    "REAL_MARKER",
    "expand_destination_hiding",
    "extract_hidden_payload",
    "is_cover_rumor",
    "pseudonymize_rid",
    "CongosNode",
    "CongosParams",
    "ConfidentialGossipCoordinator",
    "DeliveryRecord",
    "DistributionShare",
    "Fragment",
    "FragmentDelivery",
    "GDShare",
    "GroupDistributionService",
    "InstanceBundle",
    "PIPELINE_FLOOR",
    "PartitionSet",
    "ProxyAck",
    "ProxyRequest",
    "ProxyService",
    "ProxyShare",
    "RandomPartitions",
    "build_partition_set",
    "can_reconstruct",
    "congos_factory",
    "deadline_classes",
    "default_deadline_cap",
    "merge_fragments",
    "min_pipeline_deadline",
    "pipeline_deadline",
    "property1_holds",
    "property2_exact",
    "property2_holds_for_set",
    "property2_monte_carlo",
    "property2_set_size",
    "round_down_power_of_two",
    "split_data",
    "split_rumor",
    "trim_deadline",
    "xor_bytes",
]
