"""The CONGOS node: full protocol stack wiring (Figure 1).

One :class:`CongosNode` per process hosts:

* the :class:`ConfidentialGossipCoordinator` (rumor cache, reassembly,
  confirmation, fallback);
* one unfiltered AllGossip instance;
* lazily, per deadline class ``dline`` and per partition ``l``:
  a filtered GroupGossip[l] instance (scoped to this process's group), a
  Proxy[l] and a GroupDistribution[l].

``tau = 1`` (default) gives the base algorithm of Section 4 with bit
partitions; ``tau >= 2`` gives the collusion-tolerant variant of
Section 6.2 with ``tau + 1``-group random partitions — the node code is
identical, only the partition set and the split width change.

All volatile state lives in objects created by :meth:`on_start`; a crash
discards the node and a restart rebuilds it knowing only the algorithm,
``[n]``, the parameters/partitions (algorithm input) and the global clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.core.confidential_gossip import (
    ConfidentialGossipCoordinator,
    DeliverCallback,
)
from repro.core.config import CongosParams
from repro.core.deadlines import pipeline_deadline
from repro.core.group_distribution import (
    GDShare,
    GroupDistributionService,
)
from repro.core.partitions import BitPartitions, PartitionSet, RandomPartitions
from repro.core.proxy import ProxyService, ProxyShare
from repro.core.splitting import Fragment, split_rumor
from repro.gossip.continuous import ContinuousGossip
from repro.gossip.rumor import GossipItem, Rumor
from repro.gossip.service import ServiceHost
from repro.obs.instrument import NULL_TELEMETRY
from repro.sim.clock import BlockSchedule
from repro.sim.messages import Message, ServiceTags
from repro.sim.process import NodeBehavior
from repro.sim.rng import SeedSequence

__all__ = ["CongosNode", "InstanceBundle", "build_partition_set", "congos_factory"]


def build_partition_set(
    n: int, params: CongosParams, seed: int = 0
) -> PartitionSet:
    """The partition family for a CONGOS deployment.

    Part of the *algorithm input*: every process (and every restart of it)
    must use the same family, so build it once and share it with every
    node factory.
    """
    if params.tau == 1:
        return BitPartitions(n)
    rng = SeedSequence(seed).child("partitions").rng()
    return RandomPartitions.generate(
        n,
        params.tau,
        rng,
        count_constant=params.partition_count_constant,
    )


@dataclass
class InstanceBundle:
    """Per-deadline-class services, indexed by partition."""

    dline: int
    gossip: List[ContinuousGossip]
    proxies: List[ProxyService]
    distributions: List[GroupDistributionService]


class CongosNode(NodeBehavior):
    """The full CONGOS protocol at one process."""

    def __init__(
        self,
        pid: int,
        n: int,
        params: CongosParams,
        partition_set: PartitionSet,
        seeds: SeedSequence,
        deliver_callback: Optional[DeliverCallback] = None,
        telemetry=None,
    ):
        super().__init__(pid, n)
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        if partition_set.n != n:
            raise ValueError("partition set built for different n")
        if partition_set.num_groups != params.num_groups:
            raise ValueError(
                "partition set has {} groups but params.tau={} needs {}".format(
                    partition_set.num_groups, params.tau, params.num_groups
                )
            )
        self.params = params
        self.partition_set = partition_set
        self.seeds = seeds
        self.deliver_callback = deliver_callback
        # Volatile attributes are created in on_start.
        self.wakeup = 0
        self.host: ServiceHost = ServiceHost()
        self.coordinator: ConfidentialGossipCoordinator
        self.all_gossip: ContinuousGossip
        self.instances: Dict[int, InstanceBundle] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def on_start(self, round_no: int) -> None:
        self.wakeup = round_no
        self._seed_scope = self.seeds.child(self.pid, round_no)
        self.host = ServiceHost()
        self.instances = {}
        self.all_gossip = ContinuousGossip(
            pid=self.pid,
            n=self.n,
            channel="all",
            scope=range(self.n),
            rng=self._seed_scope.rng("all"),
            deliver=self._on_all_item,
            service=ServiceTags.ALL_GOSSIP,
            fanout_scale=self.params.gossip_fanout_scale,
            schedule=self.params.gossip_schedule,
            reliable=self.params.gossip_reliable,
            resend_backoff=self.params.gossip_resend_backoff,
            telemetry=self.telemetry,
        )
        self.host.register(self.all_gossip)
        self.coordinator = ConfidentialGossipCoordinator(
            pid=self.pid,
            n=self.n,
            params=self.params,
            partition_set=self.partition_set,
            deliver_callback=self.deliver_callback,
            telemetry=self.telemetry,
            # A dedicated label-derived stream: retransmit jitter draws
            # never perturb the gossip/proxy/split streams, so default
            # (knobs-off) runs remain bit-identical.
            rng=self._seed_scope.rng("direct"),
        )
        self.host.register(self.coordinator)
        self._split_rng = self._seed_scope.rng("split")

    # ------------------------------------------------------------------
    # Injection (ConfidentialGossip, Figure 8 lines 11-21)
    # ------------------------------------------------------------------

    def on_inject(self, round_no: int, rumor: Rumor) -> None:
        if not rumor.dest <= frozenset(range(self.n)):
            raise ValueError("rumor destination set contains unknown pids")
        if self.pid in rumor.dest:
            self.coordinator.deliver_local(round_no, rumor.rid, rumor.data, "local")
        if not (rumor.dest - {self.pid}):
            return  # nothing to disseminate
        dline = pipeline_deadline(rumor.deadline, self.params, self.n)
        direct = dline is None or self.params.collusion_forces_direct(self.n)
        if self.telemetry.enabled:
            self.telemetry.emit(
                "rumor_inject",
                round_no,
                rid=rumor.rid,
                src=self.pid,
                dest=sorted(rumor.dest),
                dest_size=len(rumor.dest),
                deadline=rumor.deadline,
                dline=dline,
                direct=direct,
            )
        if direct:
            self.coordinator.direct_send(round_no, rumor)
            return
        self.coordinator.register(round_no, rumor, dline)
        bundle = self._instance(dline, round_no)
        schedule = BlockSchedule(dline)
        expiry = round_no + rumor.deadline
        fragment_count = 0
        for partition in range(self.partition_set.count):
            fragments = split_rumor(
                rumor,
                partition,
                self.partition_set.num_groups,
                self._split_rng,
                dline,
                expiry,
            )
            my_group = self.partition_set.group_of(partition, self.pid)
            own = fragments[my_group]
            bundle.gossip[partition].inject(
                round_no,
                own,
                deadline=schedule.gossip_deadline,
                dest=range(self.n),
                uid=own.uid,
            )
            bundle.proxies[partition].distribute(
                round_no, [f for f in fragments if f.group != my_group]
            )
            fragment_count += len(fragments)
        if self.telemetry.enabled:
            self.telemetry.emit(
                "rumor_split",
                round_no,
                rid=rumor.rid,
                partitions=self.partition_set.count,
                groups=self.partition_set.num_groups,
                fragments=fragment_count,
            )

    # ------------------------------------------------------------------
    # Engine phases
    # ------------------------------------------------------------------

    def send_phase(self, round_no: int) -> List[Message]:
        return self.host.collect_sends(round_no)

    def receive_phase(self, round_no: int, inbox: List[Message]) -> None:
        unrouted = self.host.dispatch(round_no, inbox)
        if unrouted:
            for message in unrouted:
                self._ensure_channel(message.channel, round_no)
            stubborn = self.host.dispatch(round_no, unrouted)
            if stubborn:
                raise ValueError(
                    "unroutable channels: {}".format(
                        sorted({m.channel for m in stubborn})
                    )
                )
        self.host.finish_round(round_no)

    def delivered_rumors(self) -> Dict[object, bytes]:
        return self.coordinator.delivered()

    # ------------------------------------------------------------------
    # Instance management
    # ------------------------------------------------------------------

    def _instance(self, dline: int, round_no: int) -> InstanceBundle:
        bundle = self.instances.get(dline)
        if bundle is not None:
            return bundle
        gossip: List[ContinuousGossip] = []
        proxies: List[ProxyService] = []
        distributions: List[GroupDistributionService] = []
        for partition in range(self.partition_set.count):
            my_group = self.partition_set.group_of(partition, self.pid)
            scope = self.partition_set.members(partition, my_group)
            channel_gg = "gg/{}/{}".format(dline, partition)
            channel_px = "px/{}/{}".format(dline, partition)
            channel_gd = "gd/{}/{}".format(dline, partition)
            gg = ContinuousGossip(
                pid=self.pid,
                n=self.n,
                channel=channel_gg,
                scope=scope,
                rng=self._seed_scope.rng(channel_gg),
                deliver=self._group_item_handler(dline, partition),
                service=ServiceTags.GROUP_GOSSIP,
                fanout_scale=self.params.gossip_fanout_scale,
                schedule=self.params.gossip_schedule,
                reliable=self.params.gossip_reliable,
                resend_backoff=self.params.gossip_resend_backoff,
                telemetry=self.telemetry,
            )
            px = ProxyService(
                pid=self.pid,
                n=self.n,
                channel=channel_px,
                dline=dline,
                partition=partition,
                partition_set=self.partition_set,
                params=self.params,
                rng=self._seed_scope.rng(channel_px),
                gossip=gg,
                on_group_fragments=self._proxy_return_handler(dline, partition),
                wakeup=self.wakeup,
                telemetry=self.telemetry,
            )
            gd = GroupDistributionService(
                pid=self.pid,
                n=self.n,
                channel=channel_gd,
                dline=dline,
                partition=partition,
                partition_set=self.partition_set,
                params=self.params,
                rng=self._seed_scope.rng(channel_gd),
                gossip=gg,
                all_gossip=self.all_gossip,
                on_fragments=self._on_gd_fragments,
                wakeup=self.wakeup,
                telemetry=self.telemetry,
            )
            self.host.register(gg)
            self.host.register(px)
            self.host.register(gd)
            px.catch_up(round_no)
            gd.catch_up(round_no)
            gossip.append(gg)
            proxies.append(px)
            distributions.append(gd)
        bundle = InstanceBundle(
            dline=dline,
            gossip=gossip,
            proxies=proxies,
            distributions=distributions,
        )
        self.instances[dline] = bundle
        return bundle

    def _ensure_channel(self, channel: str, round_no: int) -> None:
        parts = channel.split("/")
        if len(parts) != 3 or parts[0] not in ("gg", "px", "gd"):
            raise ValueError("unknown channel {!r}".format(channel))
        try:
            dline = int(parts[1])
            partition = int(parts[2])
        except ValueError:
            raise ValueError("malformed channel {!r}".format(channel))
        if not 0 <= partition < self.partition_set.count:
            raise ValueError("channel {!r} names unknown partition".format(channel))
        if dline < 4 or dline & (dline - 1):
            raise ValueError("channel {!r} names invalid deadline".format(channel))
        self._instance(dline, round_no)

    # ------------------------------------------------------------------
    # Delivery routing between services
    # ------------------------------------------------------------------

    def _group_item_handler(self, dline: int, partition: int):
        def handler(round_no: int, item: GossipItem) -> None:
            bundle = self.instances[dline]
            payload = item.payload
            if isinstance(payload, Fragment):
                bundle.distributions[partition].add_waiting(round_no, payload)
            elif isinstance(payload, ProxyShare):
                bundle.proxies[partition].on_share(round_no, payload)
            elif isinstance(payload, GDShare):
                bundle.distributions[partition].on_share(round_no, payload)
            else:
                raise TypeError(
                    "unexpected GroupGossip payload {!r}".format(type(payload))
                )

        return handler

    def _proxy_return_handler(self, dline: int, partition: int):
        def handler(round_no: int, fragments: List[Fragment]) -> None:
            bundle = self.instances[dline]
            for fragment in fragments:
                bundle.distributions[partition].add_waiting(round_no, fragment)

        return handler

    def _on_gd_fragments(self, round_no: int, fragments: List[Fragment]) -> None:
        for fragment in fragments:
            self.coordinator.on_fragment(round_no, fragment)

    def _on_all_item(self, round_no: int, item: GossipItem) -> None:
        payload = item.payload
        if not hasattr(payload, "hits"):
            raise TypeError(
                "unexpected AllGossip payload {!r}".format(type(payload))
            )
        self.coordinator.on_distribution_share(round_no, payload)


def congos_factory(
    n: int,
    params: Optional[CongosParams] = None,
    seed: int = 0,
    deliver_callback: Optional[DeliverCallback] = None,
    partition_set: Optional[PartitionSet] = None,
    telemetry=None,
) -> Callable[[int], CongosNode]:
    """Build a node factory for :class:`repro.sim.engine.Engine`.

    The partition set and seed hierarchy are shared across all nodes (and
    all restarts), as the model requires.  ``telemetry`` (an
    :class:`repro.obs.Telemetry`) is shared too — it observes, it is not
    protocol state, so restarts keep emitting into the same stream.
    """
    resolved_params = params if params is not None else CongosParams()
    resolved_partitions = (
        partition_set
        if partition_set is not None
        else build_partition_set(n, resolved_params, seed)
    )
    seeds = SeedSequence(seed).child("congos")

    def factory(pid: int) -> CongosNode:
        return CongosNode(
            pid=pid,
            n=n,
            params=resolved_params,
            partition_set=resolved_partitions,
            seeds=seeds,
            deliver_callback=deliver_callback,
            telemetry=telemetry,
        )

    return factory
