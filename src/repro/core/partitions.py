"""Process-set partitions (Section 4.2 and Lemma 13).

The base algorithm uses ``log n`` *bit partitions*: partition ``l`` splits
``[n]`` by the ``l``-th bit of the process identifier, which guarantees
(Lemma 5) that any two distinct alive processes are separated by some
partition.

The collusion-tolerant variant (Section 6.2) instead uses ``~ c tau log n``
*random partitions* of ``tau + 1`` groups each, required to satisfy:

* **Partition-Property 1** — every group of every partition is non-empty;
* **Partition-Property 2** — for every set ``S`` of at least
  ``2 c' tau log n`` processes there is a partition in which every group
  intersects ``S``.

Lemma 13 proves such partition sets exist (for ``tau < n / log^2 n``) via
the probabilistic method; we *construct* them the same way — sample
uniformly, validate Property 1 exactly, and expose exact/Monte-Carlo
checkers for Property 2 (bench E8 measures how reliably random sampling
succeeds).
"""

from __future__ import annotations

import itertools
import math
import random
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "PartitionSet",
    "BitPartitions",
    "RandomPartitions",
    "property1_holds",
    "property2_holds_for_set",
    "property2_exact",
    "property2_monte_carlo",
    "property2_set_size",
]


class PartitionSet:
    """A family of partitions of ``[n]`` into ``num_groups`` groups.

    Concrete classes provide ``group_of``; everything else is derived.
    Partition sets are part of the *algorithm input* (all processes,
    including freshly restarted ones, know them), so instances must be
    deterministic functions of their construction arguments.
    """

    def __init__(self, n: int, count: int, num_groups: int):
        if n < 1:
            raise ValueError("n must be positive")
        if count < 1:
            raise ValueError("need at least one partition")
        if num_groups < 2:
            raise ValueError("need at least two groups per partition")
        self.n = n
        self.count = count
        self.num_groups = num_groups
        self._members_cache: Dict[Tuple[int, int], FrozenSet[int]] = {}

    def group_of(self, partition: int, pid: int) -> int:
        raise NotImplementedError

    def members(self, partition: int, group: int) -> FrozenSet[int]:
        """All pids assigned to ``group`` in ``partition`` (cached)."""
        key = (partition, group)
        cached = self._members_cache.get(key)
        if cached is None:
            if not 0 <= partition < self.count:
                raise IndexError("partition {} out of range".format(partition))
            if not 0 <= group < self.num_groups:
                raise IndexError("group {} out of range".format(group))
            cached = frozenset(
                pid for pid in range(self.n) if self.group_of(partition, pid) == group
            )
            self._members_cache[key] = cached
        return cached

    def assignment(self, partition: int) -> Tuple[int, ...]:
        """Group index of every pid in ``partition``."""
        return tuple(self.group_of(partition, pid) for pid in range(self.n))

    def separating_partition(self, p: int, q: int) -> Optional[int]:
        """Some partition placing ``p`` and ``q`` in different groups."""
        for partition in range(self.count):
            if self.group_of(partition, p) != self.group_of(partition, q):
                return partition
        return None

    def covering_partition(self, alive: Iterable[int]) -> Optional[int]:
        """A partition in which every group contains an alive process."""
        alive_set = set(alive)
        for partition in range(self.count):
            hit = set()
            for pid in alive_set:
                hit.add(self.group_of(partition, pid))
                if len(hit) == self.num_groups:
                    break
            if len(hit) == self.num_groups:
                return partition
        return None

    def validate_property1(self) -> None:
        for partition in range(self.count):
            for group in range(self.num_groups):
                if not self.members(partition, group):
                    raise ValueError(
                        "Partition-Property 1 violated: partition {} group {} "
                        "is empty".format(partition, group)
                    )


class BitPartitions(PartitionSet):
    """``ceil(log2 n)`` partitions by identifier bits (base CONGOS)."""

    def __init__(self, n: int):
        if n < 2:
            raise ValueError("bit partitions need n >= 2")
        count = max(1, math.ceil(math.log2(n)))
        super().__init__(n, count, 2)
        self.validate_property1()

    def group_of(self, partition: int, pid: int) -> int:
        return (pid >> partition) & 1

    def separating_partition(self, p: int, q: int) -> Optional[int]:
        if p == q:
            return None
        differing = p ^ q
        partition = (differing & -differing).bit_length() - 1
        return partition if partition < self.count else None


class RandomPartitions(PartitionSet):
    """Uniformly random assignments, Property-1 validated (Lemma 13).

    Each partition is resampled (bounded attempts) until every group is
    non-empty — the constructive counterpart of the probabilistic-method
    existence proof.  Property 2 is *checked*, not enforced, because it
    quantifies over exponentially many sets; use :func:`property2_exact`
    (small n) or :func:`property2_monte_carlo`.
    """

    def __init__(self, n: int, assignments: Sequence[Sequence[int]], num_groups: int):
        if not assignments:
            raise ValueError("need at least one assignment")
        for assignment in assignments:
            if len(assignment) != n:
                raise ValueError("assignment length must equal n")
        super().__init__(n, len(assignments), num_groups)
        self._assignments: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(a) for a in assignments
        )
        self.validate_property1()

    def group_of(self, partition: int, pid: int) -> int:
        return self._assignments[partition][pid]

    @classmethod
    def generate(
        cls,
        n: int,
        tau: int,
        rng: random.Random,
        count: Optional[int] = None,
        count_constant: float = 1.0,
        max_attempts_per_partition: int = 1000,
    ) -> "RandomPartitions":
        """Sample a Lemma-13 partition family for collusion bound ``tau``.

        ``tau + 1`` groups per partition; ``count`` defaults to
        ``ceil(count_constant * tau * log2 n)``.
        """
        if tau < 1:
            raise ValueError("tau must be >= 1")
        num_groups = tau + 1
        if num_groups > n:
            raise ValueError(
                "cannot form {} non-empty groups from {} processes".format(num_groups, n)
            )
        if count is None:
            log_n = max(1.0, math.log2(max(2, n)))
            count = max(1, math.ceil(count_constant * tau * log_n))
        assignments: List[Tuple[int, ...]] = []
        for _ in range(count):
            assignment = _sample_nonempty_assignment(
                n, num_groups, rng, max_attempts_per_partition
            )
            assignments.append(assignment)
        return cls(n, assignments, num_groups)


def _sample_nonempty_assignment(
    n: int, num_groups: int, rng: random.Random, max_attempts: int
) -> Tuple[int, ...]:
    for _ in range(max_attempts):
        assignment = tuple(rng.randrange(num_groups) for _ in range(n))
        if len(set(assignment)) == num_groups:
            return assignment
    # Deterministic fallback: seed each group with one process, randomise
    # the rest.  Still a valid Property-1 partition.
    base = list(range(num_groups)) + [
        rng.randrange(num_groups) for _ in range(n - num_groups)
    ]
    rng.shuffle(base)
    return tuple(base)


# ----------------------------------------------------------------------
# Property checkers (Lemma 13)
# ----------------------------------------------------------------------


def property1_holds(partitions: PartitionSet) -> bool:
    try:
        partitions.validate_property1()
    except ValueError:
        return False
    return True


def property2_set_size(n: int, tau: int, c_prime: float = 1.0) -> int:
    """The ``2 c' tau log n`` threshold of Partition-Property 2."""
    log_n = max(1.0, math.log2(max(2, n)))
    return max(tau + 1, math.ceil(2 * c_prime * tau * log_n))


def property2_holds_for_set(partitions: PartitionSet, alive: Iterable[int]) -> bool:
    """Does some partition have every group intersecting ``alive``?"""
    return partitions.covering_partition(alive) is not None


def property2_exact(
    partitions: PartitionSet, set_size: int, limit: int = 200_000
) -> Optional[bool]:
    """Exhaustively check Property 2 over all size-``set_size`` sets.

    Returns ``None`` when the number of sets exceeds ``limit`` (fall back
    to :func:`property2_monte_carlo`).
    """
    total = math.comb(partitions.n, set_size)
    if total > limit:
        return None
    for subset in itertools.combinations(range(partitions.n), set_size):
        if not property2_holds_for_set(partitions, subset):
            return False
    return True


def property2_monte_carlo(
    partitions: PartitionSet,
    set_size: int,
    trials: int,
    rng: random.Random,
) -> Tuple[int, int]:
    """Sample ``trials`` random sets; return (satisfied, trials).

    Adversarially-minded sampling would bias toward bad sets; uniform
    sampling mirrors the probabilistic-method argument of Lemma 13 and is
    what bench E8 reports.
    """
    if set_size > partitions.n:
        raise ValueError("set size exceeds n")
    satisfied = 0
    population = list(range(partitions.n))
    for _ in range(trials):
        subset = rng.sample(population, set_size)
        if property2_holds_for_set(partitions, subset):
            satisfied += 1
    return satisfied, trials
