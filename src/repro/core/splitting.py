"""XOR secret splitting of rumors into fragments (Sections 4.1 and 6.2).

The paper's confidentiality mechanism is the simplest instantiation of
secret sharing [34, 36]: to split a rumor ``z`` into ``g`` fragments, draw
``g - 1`` uniformly random strings ``z_0 .. z_{g-2}`` and set
``z_{g-1} = z xor z_0 xor ... xor z_{g-2}``.  Any ``g - 1`` fragments are
jointly independent of ``z`` (information-theoretic secrecy); all ``g``
fragments XOR back to ``z``.

Each :class:`Fragment` also carries the *metadata* the protocol needs —
rumor id, destination set, deadline class, expiry — none of which reveals
the rumor contents (the metadata leak is discussed in Section 7 and
addressed by :mod:`repro.core.extensions`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Sequence, Tuple

from repro.gossip.rumor import Rumor, RumorId
from repro.sim.messages import KnowledgeAtom, fragment_atom

__all__ = [
    "Fragment",
    "xor_bytes",
    "split_data",
    "split_rumor",
    "merge_fragments",
    "can_reconstruct",
]


def xor_bytes(a: bytes, b: bytes) -> bytes:
    """Byte-wise XOR of equal-length strings."""
    if len(a) != len(b):
        raise ValueError("xor_bytes requires equal lengths ({} vs {})".format(len(a), len(b)))
    return bytes(x ^ y for x, y in zip(a, b))


def split_data(data: bytes, groups: int, rng: random.Random) -> List[bytes]:
    """Split ``data`` into ``groups`` XOR shares.

    Every proper subset of the result is distributed uniformly at random,
    independent of ``data``; the XOR of all shares equals ``data``.
    """
    if groups < 2:
        raise ValueError("need at least 2 fragments for secrecy")
    shares: List[bytes] = [rng.randbytes(len(data)) for _ in range(groups - 1)]
    last = data
    for share in shares:
        last = xor_bytes(last, share)
    shares.append(last)
    return shares


@dataclass(frozen=True)
class Fragment:
    """One XOR share of one rumor, for one (partition, group) slot.

    Attributes
    ----------
    rid, src, dest:
        Rumor metadata: identifier, source process, destination set.
    partition, group, total_groups:
        Which partition's split this share belongs to and which group of
        that partition may carry it.
    data:
        The share bytes (uniformly random in isolation).
    dline:
        The trimmed (power-of-two) deadline class of the rumor.
    expiry:
        Absolute round after which distributing the fragment is pointless
        (the rumor's true deadline).
    """

    rid: RumorId
    src: int
    partition: int
    group: int
    total_groups: int
    data: bytes
    dest: FrozenSet[int]
    dline: int
    expiry: int

    def __post_init__(self) -> None:
        if not 0 <= self.group < self.total_groups:
            raise ValueError(
                "group {} out of range for {} groups".format(self.group, self.total_groups)
            )

    @property
    def uid(self) -> Tuple:
        """Unique token for dedup in gossip and audits."""
        return ("frag", self.rid, self.partition, self.group)

    def reveals(self) -> Iterator[KnowledgeAtom]:
        yield fragment_atom(self.rid, self.partition, self.group)

    def expired(self, round_no: int) -> bool:
        return round_no > self.expiry

    def __str__(self) -> str:
        return "Frag({} l={} g={}/{})".format(
            self.rid, self.partition, self.group, self.total_groups
        )


def split_rumor(
    rumor: Rumor,
    partition: int,
    groups: int,
    rng: random.Random,
    dline: int,
    expiry: int,
) -> List[Fragment]:
    """Split ``rumor`` into ``groups`` fragments for one partition.

    Called once per partition; every partition gets an *independent* split
    (fresh randomness), so fragments from different partitions cannot be
    combined — Lemma 3's "q cannot construct rho ... from any combination
    of different partitions".
    """
    shares = split_data(rumor.data, groups, rng)
    return [
        Fragment(
            rid=rumor.rid,
            src=rumor.rid.src,
            partition=partition,
            group=index,
            total_groups=groups,
            data=share,
            dest=rumor.dest,
            dline=dline,
            expiry=expiry,
        )
        for index, share in enumerate(shares)
    ]


def merge_fragments(fragments: Sequence[Fragment]) -> bytes:
    """Reassemble a rumor from the complete fragment set of one partition.

    Raises ``ValueError`` unless the fragments are exactly the
    ``total_groups`` distinct shares of one (rumor, partition) pair — a
    process holding fewer shares *cannot* call this successfully, which is
    the code-level form of the paper's secrecy observation.
    """
    if not fragments:
        raise ValueError("no fragments to merge")
    first = fragments[0]
    expected = first.total_groups
    seen_groups = set()
    for fragment in fragments:
        if fragment.rid != first.rid or fragment.partition != first.partition:
            raise ValueError("fragments from different splits cannot be merged")
        if fragment.total_groups != expected:
            raise ValueError("inconsistent total_groups")
        if fragment.group in seen_groups:
            raise ValueError("duplicate fragment for group {}".format(fragment.group))
        seen_groups.add(fragment.group)
    if len(seen_groups) != expected:
        raise ValueError(
            "need all {} fragments, have groups {}".format(expected, sorted(seen_groups))
        )
    data = fragments[0].data
    for fragment in fragments[1:]:
        data = xor_bytes(data, fragment.data)
    return data


def can_reconstruct(fragments: Iterable[Fragment]) -> Dict[Tuple[RumorId, int], List[Fragment]]:
    """Group fragments by (rumor, partition) and return the complete sets.

    Used both by the protocol's reassembly step and by the
    confidentiality auditor (which asks: could this process, or this
    coalition, reconstruct any rumor it should not know?).
    """
    buckets: Dict[Tuple[RumorId, int], Dict[int, Fragment]] = {}
    for fragment in fragments:
        key = (fragment.rid, fragment.partition)
        buckets.setdefault(key, {})[fragment.group] = fragment
    complete: Dict[Tuple[RumorId, int], List[Fragment]] = {}
    for key, by_group in buckets.items():
        total = next(iter(by_group.values())).total_groups
        if len(by_group) == total:
            complete[key] = [by_group[g] for g in sorted(by_group)]
    return complete
